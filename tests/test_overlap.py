"""Tests for the communication/compute overlap pipeline.

Covers the three layers of the feature:

* runtime primitives — nonblocking ``ishift``/``irecv``/``iallgather``
  handles, hidden-time accounting, and the ``BufferPool`` double-buffer
  lease / no-aliasing invariants;
* the software-pipelined phase loops of all four algorithm families —
  ``overlap="on"`` must be **bitwise identical** to ``overlap="off"``
  across kernels, elisions, communication modes and grids;
* the worker pool's second dispatch slot and the session's cross-call
  pipeline — including abort/recovery with an exchange in flight.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.algorithms.fused import run_fusedmm
from repro.algorithms.registry import make_algorithm
from repro.errors import CommError, ReproError
from repro.model.costs import fusedmm_cost, fusedmm_time_overlap, overlap_gain_seconds
from repro.runtime.buffers import BufferLeaseError, BufferPool
from repro.runtime.profile import RankProfile
from repro.runtime.spmd import WorkerPool, run_spmd
from repro.types import Elision, FusedVariant, Mode, Phase

from tests.conftest import require_world_size
from helpers import dist_sddmm, dist_spmm_a, dist_spmm_b

#: (family, p, c, comm modes with a real path, elisions)
FAMILIES = [
    ("1.5d-dense-shift", 8, 2, ("dense",),
     (Elision.NONE, Elision.REPLICATION_REUSE, Elision.LOCAL_KERNEL_FUSION)),
    ("1.5d-dense-shift", 4, 4, ("dense",), (Elision.REPLICATION_REUSE,)),
    ("1.5d-sparse-shift", 8, 4, ("dense", "sparse"),
     (Elision.NONE, Elision.REPLICATION_REUSE)),
    ("1.5d-sparse-shift", 8, 2, ("sparse",), (Elision.REPLICATION_REUSE,)),
    ("2.5d-dense-replicate", 8, 2, ("dense",),
     (Elision.NONE, Elision.REPLICATION_REUSE)),
    ("2.5d-sparse-replicate", 8, 2, ("dense", "sparse"), (Elision.NONE,)),
    ("2.5d-sparse-replicate", 16, 4, ("sparse",), (Elision.NONE,)),
]


def _alg(name, p, c, overlap):
    alg = make_algorithm(name, p, c)
    alg.overlap = overlap
    return alg


# ----------------------------------------------------------------------
# bitwise equivalence: overlap on == overlap off
# ----------------------------------------------------------------------


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("name,p,c,comms,elisions", FAMILIES)
    def test_fused_bitwise_across_modes(
        self, name, p, c, comms, elisions, small_problem
    ):
        S, A, B = small_problem
        for comm in comms:
            for elision in elisions:
                for variant in (FusedVariant.FUSED_A, FusedVariant.FUSED_B):
                    res_off = run_fusedmm(
                        make_algorithm(name, p, c), S, A, B, variant, elision,
                        comm_mode=comm, overlap="off", collect_sddmm=True,
                    )
                    res_on = run_fusedmm(
                        make_algorithm(name, p, c), S, A, B, variant, elision,
                        comm_mode=comm, overlap="on", collect_sddmm=True,
                    )
                    assert np.array_equal(res_off.output, res_on.output), (
                        name, comm, elision, variant,
                    )
                    assert np.array_equal(res_off.sddmm.vals, res_on.sddmm.vals)

    @pytest.mark.parametrize("name,p,c", [
        ("1.5d-dense-shift", 8, 2),
        ("1.5d-sparse-shift", 8, 4),
        ("2.5d-dense-replicate", 8, 2),
        ("2.5d-sparse-replicate", 8, 2),
    ])
    def test_single_kernels_bitwise(self, name, p, c, small_problem):
        S, A, B = small_problem
        for ov in (False, True):
            out = dist_sddmm(_alg(name, p, c, ov), S, A, B)
            if not ov:
                ref_sddmm = out
            else:
                assert np.array_equal(ref_sddmm.vals, out.vals)
        for ov in (False, True):
            out = dist_spmm_a(_alg(name, p, c, ov), S, B)
            if not ov:
                ref_a = out
            else:
                assert np.array_equal(ref_a, out)
        for ov in (False, True):
            out = dist_spmm_b(_alg(name, p, c, ov), S, A)
            if not ov:
                ref_b = out
            else:
                assert np.array_equal(ref_b, out)

    def test_sparse_comm_single_kernels_bitwise(self, small_problem):
        """Packed-plan kernels: async exchanges must place identically."""
        S, A, B = small_problem
        for name, p, c in (("1.5d-sparse-shift", 8, 4),
                           ("2.5d-sparse-replicate", 8, 2)):
            ref = {}
            for ov in (False, True):
                alg = _alg(name, p, c, ov)
                plan = alg.plan(S.nrows, S.ncols, A.shape[1])
                sparse_plans = alg.build_comm_plans(plan, S)
                for mode, args in ((Mode.SDDMM, (A, B)),
                                   (Mode.SPMM_A, (None, B)),
                                   (Mode.SPMM_B, (A, None))):
                    locals_ = alg.distribute(plan, S, *args)

                    def body(comm):
                        ctx = alg.make_context(comm)
                        alg.rank_kernel(
                            ctx, plan, locals_[comm.rank], mode,
                            sparse_plan=sparse_plans[comm.rank],
                        )

                    run_spmd(p, body)
                    if mode == Mode.SDDMM:
                        out = alg.collect_sddmm(plan, locals_, S).vals
                    elif mode == Mode.SPMM_A:
                        out = alg.collect_dense_a(plan, locals_)
                    else:
                        out = alg.collect_dense_b(plan, locals_)
                    if not ov:
                        ref[mode] = out
                    else:
                        assert np.array_equal(ref[mode], out), (name, mode)

    def test_session_overlap_knob_bitwise(self, small_problem, exec_backend):
        require_world_size(exec_backend, 8)
        S, A, B = small_problem
        outs = {}
        for ov in ("off", "on"):
            with repro.plan(
                S, A.shape[1], p=8, c=4, algorithm="1.5d-sparse-shift",
                elision="replication-reuse", comm="sparse", overlap=ov,
                backend=exec_backend,
            ) as sess:
                outs[ov] = [sess.fusedmm_b(A, B)[0] for _ in range(3)]
        for x, y in zip(outs["off"], outs["on"]):
            assert np.array_equal(x, y)


# ----------------------------------------------------------------------
# nonblocking primitives
# ----------------------------------------------------------------------


class TestNonblockingPrimitives:
    def test_ishift_matches_shift(self):
        def body(comm):
            payload = np.full((4, 3), float(comm.rank))
            sync = comm.shift(payload, displacement=1, tag=7)
            pend = comm.ishift(payload, displacement=1, tag=8)
            return sync, pend.wait()

        results, _ = run_spmd(4, body)
        for sync, overlapped in results:
            assert np.array_equal(sync, overlapped)

    def test_iallgather_matches_allgather_and_word_counts(self):
        def body(comm):
            mine = np.arange(3, dtype=float) + 10 * comm.rank
            with comm.profile.track(Phase.REPLICATION):
                ring = comm.allgather(mine, tag=21)
            ring_words = comm.profile.counters[Phase.REPLICATION].words_received
            with comm.profile.track(Phase.PROPAGATION):
                direct = comm.iallgather(mine, tag=22).wait()
            direct_words = comm.profile.counters[Phase.PROPAGATION].words_received
            assert ring_words == direct_words
            for a, b in zip(ring, direct):
                assert np.array_equal(a, b)

        run_spmd(4, body)

    def test_handle_waited_twice_raises(self):
        def body(comm):
            pend = comm.ishift(np.ones(2), displacement=1)
            pend.wait()
            with pytest.raises(CommError):
                pend.wait()

        run_spmd(2, body)

    def test_single_rank_ishift_isolates(self):
        def body(comm):
            x = np.ones(3)
            got = comm.ishift(x, displacement=1).wait()
            assert np.array_equal(got, x) and got is not x

        run_spmd(1, body)

    def test_hidden_time_recorded_behind_compute(self):
        """A deferred wait attributes in-flight transfer time as hidden."""
        import time as _time

        def body(comm):
            with comm.profile.track(Phase.PROPAGATION):
                pend = comm.ishift(np.ones(8), displacement=1, tag=5)
            _time.sleep(0.02)  # "compute" while the message is in flight
            with comm.profile.track(Phase.PROPAGATION):
                pend.wait()

        _, report = run_spmd(2, body)
        assert report.hidden_comm_seconds > 0.0
        # hidden time never exceeds the post-to-wait window we created
        assert report.hidden_comm_seconds < 1.0


# ----------------------------------------------------------------------
# BufferPool double-buffer leases
# ----------------------------------------------------------------------


class TestBufferPoolLeases:
    def test_lease_reuses_first_slot_when_idle(self):
        pool = BufferPool()
        a = pool.lease("panel", (4, 4))
        b = pool.lease("panel", (4, 4))
        assert a is b  # steady-state footprint identical to plain empty()

    def test_lease_rotates_past_in_flight_slot(self):
        pool = BufferPool()
        a = pool.guard(pool.lease("panel", (4, 4)))
        b = pool.lease("panel", (4, 4))
        assert b is not a
        assert not np.shares_memory(a, b)

    def test_acquiring_guarded_slot_raises(self):
        pool = BufferPool()
        pool.guard(pool.lease("panel", (4, 4)))
        with pytest.raises(BufferLeaseError):
            pool.empty("panel@0", (4, 4))

    def test_both_slots_in_flight_raises(self):
        pool = BufferPool()
        pool.guard(pool.lease("panel", (4, 4)))
        pool.guard(pool.lease("panel", (4, 4)))
        with pytest.raises(BufferLeaseError):
            pool.lease("panel", (4, 4))

    def test_release_returns_slot_to_rotation(self):
        pool = BufferPool()
        a = pool.guard(pool.lease("panel", (4, 4)))
        pool.release(a)
        assert pool.lease("panel", (4, 4)) is a

    def test_release_is_idempotent_and_clear_resets(self):
        pool = BufferPool()
        a = pool.guard(pool.lease("panel", (2, 2)))
        pool.release(a)
        pool.release(a)
        pool.guard(pool.lease("panel", (2, 2)))
        pool.clear()
        pool.lease("panel", (2, 2))  # no stale guards survive clear()

    def test_lease_zeros_zeroes(self):
        pool = BufferPool()
        buf = pool.lease("acc", (3, 3))
        buf.fill(7.0)
        assert np.all(pool.lease_zeros("acc", (3, 3)) == 0.0)

    def test_guard_reports_peak_bytes_like_plain_slots(self):
        prof = RankProfile()
        pool = BufferPool(profile=prof)
        pool.lease("panel", (8, 8))
        assert prof.peak_buffer_bytes == 8 * 8 * 8


# ----------------------------------------------------------------------
# worker pool: second dispatch slot + abort with an exchange in flight
# ----------------------------------------------------------------------


class TestPoolSecondSlot:
    def test_run_async_basic(self):
        with WorkerPool(4) as pool:
            fut = pool.run_async(lambda comm: comm.rank * 2)
            results, report = fut.wait()
            assert results == [0, 2, 4, 6]
            assert fut.done
            # idempotent wait
            assert fut.wait()[0] == results

    def test_two_items_pipeline_in_order(self):
        order = []

        def first(comm):
            got = comm.shift(comm.rank, displacement=1)
            if comm.rank == 0:
                order.append("first")
            return got

        def second(comm):
            got = comm.shift(comm.rank, displacement=-1)
            if comm.rank == 0:
                order.append("second")
            return got

        with WorkerPool(3) as pool:
            f1 = pool.run_async(first, label="one")
            f2 = pool.run_async(second, label="two")
            r2, _ = f2.wait()
            r1, _ = f1.wait()  # settled already (FIFO); cached outcome
            assert r1 == [(r - 1) % 3 for r in range(3)]
            assert r2 == [(r + 1) % 3 for r in range(3)]
            assert order == ["first", "second"]

    def test_abort_with_exchange_in_flight_recovers(self):
        """One rank dies while a sibling has a nonblocking exchange posted
        and is blocked in its wait; the pool must unwind and recover."""

        def bad(comm):
            if comm.rank == 0:
                raise ValueError("boom mid-pipeline")
            # posts the send, then blocks waiting for rank 0's message,
            # which never comes — only the abort can release this wait
            pend = comm.ishift(np.ones(16), displacement=1, tag=9)
            return pend.wait()

        with WorkerPool(4) as pool:
            fut = pool.run_async(bad, label="doomed")
            with pytest.raises(RuntimeError, match="rank 0 failed"):
                fut.wait()
            # recovered: the same resident ranks serve the next item
            results, _ = pool.run(lambda comm: comm.shift(comm.rank, 1))
            assert results == [(r - 1) % 4 for r in range(4)]

    def test_pipelined_item_behind_failure_is_poisoned(self):
        def bad(comm):
            comm.barrier(tag=60)
            if comm.rank == 1:
                raise ValueError("first item dies")
            comm.recv(comm.rank, tag=61)  # blocks until abort

        def innocent(comm):
            return comm.shift(comm.rank, displacement=1)

        with WorkerPool(3) as pool:
            f1 = pool.run_async(bad, label="bad")
            f2 = pool.run_async(innocent, label="innocent")
            with pytest.raises(RuntimeError, match="aborted"):
                f2.wait()
            with pytest.raises(RuntimeError, match="rank 1 failed"):
                f1.wait()
            # pool is reusable after the drained recovery
            results, _ = pool.run(innocent)
            assert results == [(r - 1) % 3 for r in range(3)]

    def test_inflight_cap_blocks_third_dispatch(self):
        with WorkerPool(2) as pool:
            futs = [
                pool.run_async(lambda comm: comm.shift(comm.rank, 1), label=str(i))
                for i in range(5)  # > MAX_INFLIGHT: dispatch self-throttles
            ]
            for fut in futs:
                results, _ = fut.wait()
                assert results == [1, 0]

    def test_single_rank_pool_runs_inline(self):
        with WorkerPool(1) as pool:
            fut = pool.run_async(lambda comm: 42)
            assert fut.done
            assert fut.wait()[0] == [42]


# ----------------------------------------------------------------------
# session: overlap knob resolution, cross-call pipeline, abort recovery
# ----------------------------------------------------------------------


class TestSessionOverlap:
    def test_auto_resolves_on_for_multirank(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=8, c=4,
                        algorithm="1.5d-sparse-shift",
                        elision="replication-reuse") as sess:
            assert sess.overlap_mode == "on"
            assert "overlap='on'" in repr(sess)

    def test_auto_resolves_off_for_single_rank(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=1, c=1,
                        algorithm="1.5d-dense-shift") as sess:
            assert sess.overlap_mode == "off"

    def test_invalid_overlap_rejected(self, small_problem):
        S, A, B = small_problem
        with pytest.raises(ReproError, match="overlap"):
            repro.plan(S, A.shape[1], p=4, overlap="maybe")

    def test_overlap_run_measures_hidden_comm(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=8, c=4,
                        algorithm="1.5d-sparse-shift",
                        elision="replication-reuse", comm="sparse",
                        overlap="on") as sess:
            _, report = sess.fusedmm_b(A, B)
        assert report.hidden_comm_seconds > 0.0
        assert 0.0 < report.overlap_efficiency <= 1.0

    def test_sync_run_measures_no_hidden_comm(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=8, c=4,
                        algorithm="1.5d-sparse-shift",
                        elision="replication-reuse", comm="sparse",
                        overlap="off") as sess:
            _, report = sess.fusedmm_b(A, B)
        assert report.hidden_comm_seconds == 0.0
        assert report.overlap_efficiency == 0.0

    def test_with_model_reports_both_bounds(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=8, c=4,
                        algorithm="1.5d-sparse-shift",
                        elision="replication-reuse", overlap="on") as sess:
            _, report = sess.fusedmm_b(A, B)
        modeled = report.with_model(repro.CORI_KNL)
        # the optimistic bound never exceeds the synchronous total, and the
        # measured split is reported alongside, not instead
        assert modeled.overlap_bound_seconds <= modeled.synchronous_seconds
        assert modeled.modeled_hideable_seconds >= 0.0
        assert modeled.measured_hidden_seconds == report.hidden_comm_seconds
        assert modeled.measured_exposed_seconds == report.exposed_comm_seconds
        assert modeled.overlap_efficiency == report.overlap_efficiency

    def test_async_pipeline_bitwise_and_reports(self, small_problem):
        S, A, B = small_problem
        rng = np.random.default_rng(3)
        Bs = [rng.standard_normal(B.shape) for _ in range(4)]
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift",
                        elision="replication-reuse") as sess:
            sync_outs = [sess.fusedmm_a(A, b)[0] for b in Bs]
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift",
                        elision="replication-reuse") as sess:
            futures = [sess.fusedmm_a_async(A, b) for b in Bs]
            outs = [f.result() for f in futures]
        for want, (got, report) in zip(sync_outs, outs):
            assert np.array_equal(want, got)
            assert report.comm_mode == "dense"

    def test_async_result_is_idempotent_and_unclobbered(self, small_problem):
        """A later pipelined call must not clobber an unconsumed output."""
        S, A, B = small_problem
        rng = np.random.default_rng(4)
        B2 = rng.standard_normal(B.shape)
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            want1 = sess.fusedmm_a(A, B)[0]
            want2 = sess.fusedmm_a(A, B2)[0]
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            f1 = sess.fusedmm_a_async(A, B)
            f2 = sess.fusedmm_a_async(A, B2)  # stages while f1 runs
            out2 = f2.result()[0]
            out1 = f1.result()[0]  # finalized before f2 promoted; cached
            assert np.array_equal(want1, out1)
            assert np.array_equal(want2, out2)

    def test_async_on_nonpersistent_session_falls_back(self, small_problem):
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift",
                        persistent=False) as sess:
            want = sess.fusedmm_a(A, B)[0]
            fut = sess.fusedmm_a_async(A, B)
            assert fut.done
            assert np.array_equal(want, fut.result()[0])

    def test_failure_invalidates_skip_rebind_snapshots(self, small_problem):
        """A failed item must clear the dense-operand snapshots: a bind
        staged (or marked bound) around the failure may never be skipped
        against resident blocks the aborted kernels half-overwrote."""
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            want = sess.fusedmm_a(A, B)[0]
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            f1 = sess.fusedmm_a_async(A, B)  # snapshots both sides

            def bad(ctx, plan_, local, sparse_plan=None):
                local.A[:] = np.nan  # clobber resident blocks, then die
                local.B[:] = np.nan
                ctx.comm.barrier(tag=77)
                raise ValueError("post-clobber failure")

            with pytest.raises(RuntimeError):
                sess.run_rank(bad, label="clobber")
            f1.result()  # finalized before the failing dispatch; still good
            # the failure cleared every snapshot: rebinding the *same*
            # operands must NOT be skipped against the NaN-filled blocks
            out, _ = sess.fusedmm_a(A, B)
            assert np.isfinite(out).all()
            assert np.array_equal(want, out)

    def test_single_rank_failure_invalidates_snapshots_too(self, small_problem):
        """p=1 pools run the body inline, so the failure surfaces at
        dispatch time — it must still clear the skip-rebind snapshots."""
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=1, c=1,
                        algorithm="1.5d-dense-shift") as sess:
            want = sess.fusedmm_a(A, B)[0]
        with repro.plan(S, A.shape[1], p=1, c=1,
                        algorithm="1.5d-dense-shift") as sess:
            sess.fusedmm_a(A, B)

            def bad(ctx, plan_, local, sparse_plan=None):
                local.A[:] = np.nan
                local.B[:] = np.nan
                raise ValueError("inline failure")

            with pytest.raises(ValueError):
                sess.run_rank(bad, label="clobber")
            out, _ = sess.fusedmm_a(A, B)  # must rebind, not skip
            assert np.isfinite(out).all()
            assert np.array_equal(want, out)

    def test_changing_operand_retires_tracking(self, small_problem):
        """A side that misses the snapshot compare on every bind stops
        being tracked until a kernel dirties it (no permanent upkeep for
        always-fresh operands) — and correctness is unaffected."""
        S, A, B = small_problem
        rng = np.random.default_rng(11)
        limit = repro.Session._BIND_MISS_LIMIT
        with repro.plan(S, A.shape[1], p=4, c=2,
                        algorithm="1.5d-dense-shift") as sess:
            for _ in range(limit + 2):
                sess.sddmm(A, rng.standard_normal(B.shape))
            # after `limit` misses the b-side snapshot is retired
            assert sess._dense_state[False]["b"] is None
            # ...while the repeating a-side still skips
            assert sess.dense_bind_counts["a"] == 1
            out, _ = sess.sddmm(A, B)
            from repro.baselines.serial import sddmm_serial

            np.testing.assert_allclose(out.vals, sddmm_serial(S, A, B).vals,
                                       rtol=1e-9)

    def test_stale_lease_guards_cleared_at_next_dispatch(self, small_problem):
        """An abort can unwind a rank before it waits a posted exchange,
        leaving its panel guard set; the next dispatch must clear such
        leftovers or the session wedges in BufferLeaseError."""
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=8, c=2, algorithm="2.5d-sparse-replicate",
                        comm="sparse", overlap="on") as sess:
            want, _ = sess.fusedmm_a(A, B)

            def leaky(ctx, plan_, local, sparse_plan=None):
                # guard both rotating slots, as a dual gather interrupted
                # mid-wait would, then die without releasing
                ctx.pool.guard(ctx.pool.lease("gather-a", (4, 4)))
                ctx.pool.guard(ctx.pool.lease("gather-a", (4, 4)))
                ctx.pool.guard(ctx.pool.lease("gather-b", (4, 4)))
                raise ValueError("died with exchanges in flight")

            with pytest.raises(RuntimeError):
                sess.run_rank(leaky, label="leak")
            got, _ = sess.fusedmm_a(A, B)  # would raise BufferLeaseError
            assert np.array_equal(want, got)

    def test_overlap_session_abort_and_recovery(self, small_problem):
        """A rank failure with pipelined exchanges in flight must leave the
        session's pool reusable and later calls correct."""
        S, A, B = small_problem
        with repro.plan(S, A.shape[1], p=8, c=4,
                        algorithm="1.5d-sparse-shift",
                        elision="replication-reuse", comm="sparse",
                        overlap="on") as sess:
            want, _ = sess.fusedmm_b(A, B)

            def bad(ctx, plan_, local, sparse_plan=None):
                if ctx.comm.rank == 3:
                    raise ValueError("mid-exchange failure")
                pend = ctx.comm.ishift(np.ones(4), displacement=1, tag=9)
                pend.wait()

            with pytest.raises(RuntimeError):
                sess.run_rank(bad, label="doomed")
            got, _ = sess.fusedmm_b(A, B)
            assert np.array_equal(want, got)


# ----------------------------------------------------------------------
# model: the overlapped-time term
# ----------------------------------------------------------------------


class TestOverlapModel:
    KEY = "1.5d-sparse-shift/replication-reuse"

    def test_overlap_time_never_exceeds_sync(self):
        n, r, p, c, phi = 4096, 64, 16, 4, 0.02
        sync = fusedmm_cost(self.KEY, n, r, p, c, phi).time(
            repro.CORI_KNL, flops=4.0 * phi * n * r * r / p
        )
        overlapped = fusedmm_time_overlap(self.KEY, n, r, p, c, phi, repro.CORI_KNL)
        assert overlapped <= sync
        assert overlapped == pytest.approx(
            sync - overlap_gain_seconds(self.KEY, n, r, p, c, phi, repro.CORI_KNL)
        )

    def test_gain_is_min_of_prop_and_compute(self):
        n, r, p, c, phi = 4096, 64, 16, 4, 0.02
        cost = fusedmm_cost(self.KEY, n, r, p, c, phi)
        m = repro.CORI_KNL
        t_prop = m.time(cost.propagation_words, cost.propagation_messages)
        t_comp = m.gamma * 4.0 * (phi * n * r) * r / p
        gain = overlap_gain_seconds(self.KEY, n, r, p, c, phi, m)
        assert gain == pytest.approx(min(t_prop, t_comp))

    def test_efficiency_discounts_linearly(self):
        n, r, p, c, phi = 4096, 64, 16, 4, 0.02
        full = overlap_gain_seconds(self.KEY, n, r, p, c, phi, repro.CORI_KNL)
        half = overlap_gain_seconds(
            self.KEY, n, r, p, c, phi, repro.CORI_KNL, efficiency=0.5
        )
        assert half == pytest.approx(0.5 * full)

    def test_sparse_comm_variant_supported(self):
        n, r, p, c, phi = 4096, 64, 16, 4, 0.02
        dense_t = fusedmm_time_overlap(self.KEY, n, r, p, c, phi, repro.CORI_KNL)
        sparse_t = fusedmm_time_overlap(
            self.KEY, n, r, p, c, phi, repro.CORI_KNL, sparse_comm=True
        )
        assert sparse_t <= dense_t  # need lists only remove traffic

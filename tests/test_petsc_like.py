"""Tests for the PETSc-like 1D block-row baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.petsc_like import (
    petsc_distribute,
    petsc_like_fusedmm_surrogate,
    petsc_like_spmm,
    petsc_plan,
)
from repro.baselines.serial import spmm_a_serial
from repro.sparse.generate import erdos_renyi
from repro.types import Phase


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_matches_serial(self, p, small_problem):
        S, A, B = small_problem
        out, _ = petsc_like_spmm(S, B, p)
        np.testing.assert_allclose(out, spmm_a_serial(S, B), rtol=1e-9, atol=1e-12)

    def test_fusedmm_surrogate_is_two_calls(self, small_problem):
        S, A, B = small_problem
        out, report = petsc_like_fusedmm_surrogate(S, B, 4)
        np.testing.assert_allclose(out, spmm_a_serial(S, B), rtol=1e-9)
        _, single = petsc_like_spmm(S, B, 4)
        assert report.comm_words == 2 * single.comm_words

    def test_empty_matrix(self, rng):
        from repro.sparse.coo import CooMatrix

        e = np.empty(0, np.int64)
        S = CooMatrix(e, e, np.empty(0), (20, 20))
        out, _ = petsc_like_spmm(S, rng.standard_normal((20, 4)), 4)
        np.testing.assert_allclose(out, 0)


class TestCommunicationBehavior:
    def test_fetches_only_needed_rows(self):
        """A block-diagonal matrix needs no remote B rows at all."""
        n, p = 64, 4
        blk = n // p
        rng = np.random.default_rng(0)
        rows = np.concatenate([
            rng.integers(k * blk, (k + 1) * blk, 30) for k in range(p)
        ]).astype(np.int64)
        cols = np.concatenate([
            rng.integers(k * blk, (k + 1) * blk, 30) for k in range(p)
        ]).astype(np.int64)
        from repro.sparse.coo import CooMatrix

        S = CooMatrix(rows, cols, np.ones(len(rows)), (n, n))
        B = rng.standard_normal((n, 8))
        _, report = petsc_like_spmm(S, B, p)
        # only zero-length index requests travel
        assert report.phase_words(Phase.PROPAGATION) == 0

    def test_communication_does_not_shrink_with_p(self):
        """The paper's criticism: no replication, so per-rank communication
        volume stays roughly flat as p grows (poor strong scaling)."""
        S = erdos_renyi(512, 512, 16, seed=1)
        rng = np.random.default_rng(0)
        B = rng.standard_normal((512, 32))
        _, rep4 = petsc_like_spmm(S, B, 4)
        _, rep16 = petsc_like_spmm(S, B, 16)
        w4 = rep4.phase_words(Phase.PROPAGATION)
        w16 = rep16.phase_words(Phase.PROPAGATION)
        # a communication-avoiding algorithm would shrink ~2x (1/sqrt(p));
        # the 1D baseline shrinks far less
        assert w16 > 0.6 * w4

    def test_distribution_covers_all_rows(self, small_problem):
        S, A, B = small_problem
        plan = petsc_plan(S.nrows, S.ncols, B.shape[1], 4)
        locals_ = petsc_distribute(plan, S, B)
        assert sum(len(l.rows) for l in locals_) == S.nnz
        assert sum(l.n_local_rows for l in locals_) == S.nrows

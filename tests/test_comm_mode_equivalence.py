"""comm="sparse" must be numerically equivalent to comm="dense".

The central invariant of the sparse communication subsystem: for every
sparse-comm-capable algorithm, every kernel mode, every supported elision
and every feasible replication factor, need-list communication changes
*how much* data moves but never *what* is computed (up to floating-point
reassociation).  Also covers the ``comm="auto"`` policy and the headline
volume reduction the subsystem exists for.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from tests.conftest import require_world_size
from repro.algorithms.registry import (
    ALGORITHMS,
    feasible_replication_factors,
    make_algorithm,
    supports_sparse_comm,
)
from repro.baselines.serial import sddmm_serial, spmm_a_serial, spmm_b_serial
from repro.errors import ReproError
from repro.model.optimal import choose_comm_mode
from repro.runtime.spmd import run_spmd
from repro.sparse.coo import CooMatrix
from repro.sparse.generate import erdos_renyi
from repro.types import Elision, Mode

SPARSE_CAPABLE = sorted(n for n in ALGORITHMS if supports_sparse_comm(n))

GRIDS = {
    "1.5d-sparse-shift": [(4, 1), (8, 2), (8, 4), (8, 8)],
    "2.5d-sparse-replicate": [(4, 1), (8, 2), (16, 4), (18, 2)],
}


def run_mode(alg, S, A, B, mode, sparse):
    r = (A if A is not None else B).shape[1]
    plan = alg.plan(S.nrows, S.ncols, r)
    locals_ = alg.distribute(plan, S, A, B)
    cplans = alg.build_comm_plans(plan, S) if sparse else None

    def body(comm):
        ctx = alg.make_context(comm)
        kw = {"sparse_plan": cplans[comm.rank]} if cplans is not None else {}
        alg.rank_kernel(ctx, plan, locals_[comm.rank], mode, **kw)

    run_spmd(alg.p, body)
    return plan, locals_


@pytest.mark.parametrize("name", SPARSE_CAPABLE)
@pytest.mark.parametrize("mode", [Mode.SDDMM, Mode.SPMM_A, Mode.SPMM_B])
def test_sparse_comm_matches_dense_all_grids(name, mode, rng):
    m, n, r = 52, 61, 10
    S = erdos_renyi(m, n, 3, seed=17)
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((n, r))
    for p, c in GRIDS[name]:
        alg_d = make_algorithm(name, p, c)
        alg_s = make_algorithm(name, p, c)
        plan_d, loc_d = run_mode(alg_d, S, A, B, mode, sparse=False)
        plan_s, loc_s = run_mode(alg_s, S, A, B, mode, sparse=True)
        if mode == Mode.SDDMM:
            got_d = alg_d.collect_sddmm(plan_d, loc_d, S).vals
            got_s = alg_s.collect_sddmm(plan_s, loc_s, S).vals
        elif mode == Mode.SPMM_A:
            got_d = alg_d.collect_dense_a(plan_d, loc_d)
            got_s = alg_s.collect_dense_a(plan_s, loc_s)
        else:
            got_d = alg_d.collect_dense_b(plan_d, loc_d)
            got_s = alg_s.collect_dense_b(plan_s, loc_s)
        np.testing.assert_allclose(got_s, got_d, rtol=1e-9, atol=1e-10)


@pytest.mark.parametrize(
    "name,elision",
    [
        ("1.5d-sparse-shift", "none"),
        ("1.5d-sparse-shift", "replication-reuse"),
        ("2.5d-sparse-replicate", "none"),
    ],
)
@pytest.mark.parametrize("fused", [repro.fusedmm_a, repro.fusedmm_b])
def test_fused_sparse_comm_matches_dense(name, elision, fused, rng, exec_backend):
    m = n = 48
    r = 8
    S = erdos_renyi(m, n, 3, seed=23)
    A = rng.standard_normal((m, r))
    B = rng.standard_normal((n, r))
    grids = [(8, 2), (8, 4)] if name.startswith("1.5d") else [(8, 2)]
    for p, c in grids:
        require_world_size(exec_backend, p)
        out_d, _ = fused(S, A, B, p=p, c=c, algorithm=name, elision=elision,
                         comm="dense", backend=exec_backend)
        out_s, _ = fused(S, A, B, p=p, c=c, algorithm=name, elision=elision,
                         comm="sparse", backend=exec_backend)
        np.testing.assert_allclose(out_s, out_d, rtol=1e-9, atol=1e-10)


@st.composite
def sparse_problems(draw):
    m = draw(st.integers(4, 40))
    n = draw(st.integers(4, 40))
    r = draw(st.integers(1, 10))
    nnz = draw(st.integers(0, 100))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, nnz).astype(np.int64)
    cols = rng.integers(0, n, nnz).astype(np.int64)
    S = CooMatrix(rows, cols, rng.standard_normal(nnz), (m, n))
    return S, rng.standard_normal((m, r)), rng.standard_normal((n, r))


@st.composite
def sparse_grids(draw):
    name = draw(st.sampled_from(SPARSE_CAPABLE))
    p = draw(st.sampled_from([1, 2, 4, 8, 9, 16]))
    feas = feasible_replication_factors(name, p)
    if not feas:
        p = 4
        feas = feasible_replication_factors(name, p)
    c = draw(st.sampled_from(list(feas)))
    return name, p, c


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(problem=sparse_problems(), grid=sparse_grids())
def test_sparse_comm_equals_serial_randomized(problem, grid):
    """Property: the sparse-comm path agrees with the serial baselines on
    arbitrary shapes, sparsities (including empty) and grids."""
    S, A, B = problem
    name, p, c = grid
    alg = make_algorithm(name, p, c)
    plan, loc = run_mode(alg, S, A, B, Mode.SDDMM, sparse=True)
    np.testing.assert_allclose(
        alg.collect_sddmm(plan, loc, S).vals, sddmm_serial(S, A, B).vals,
        rtol=1e-8, atol=1e-10,
    )
    alg = make_algorithm(name, p, c)
    plan, loc = run_mode(alg, S, None, B, Mode.SPMM_A, sparse=True)
    np.testing.assert_allclose(
        alg.collect_dense_a(plan, loc), spmm_a_serial(S, B), rtol=1e-8, atol=1e-10
    )
    alg = make_algorithm(name, p, c)
    plan, loc = run_mode(alg, S, A, None, Mode.SPMM_B, sparse=True)
    np.testing.assert_allclose(
        alg.collect_dense_b(plan, loc), spmm_b_serial(S, A), rtol=1e-8, atol=1e-10
    )


class TestCommModeSelection:
    def test_sparse_on_dense_family_raises(self, rng):
        S = erdos_renyi(32, 32, 2, seed=0)
        A = rng.standard_normal((32, 4))
        B = rng.standard_normal((32, 4))
        with pytest.raises(ReproError, match="sparse-communication"):
            repro.sddmm(S, A, B, p=4, algorithm="1.5d-dense-shift", comm="sparse")

    def test_auto_on_dense_family_is_dense(self):
        assert choose_comm_mode("1.5d-dense-shift", 1024, 64, 4096, 8, 2) == "dense"

    def test_auto_prefers_sparse_for_hypersparse(self):
        # phi = nnz/(n r) well under the coverage saturation point
        assert (
            choose_comm_mode("1.5d-sparse-shift", 4096, 64, 2 * 4096, 8, 4) == "sparse"
        )

    def test_auto_prefers_dense_when_saturated(self):
        # nnz >> n: every row is touched, need lists buy nothing
        n = 256
        assert (
            choose_comm_mode("1.5d-sparse-shift", n, 16, 64 * n, 8, 4) == "dense"
        )

    def test_auto_algorithm_with_sparse_comm_picks_capable_family(self, rng):
        """algorithm='auto' + comm='sparse' must restrict the search to
        sparse-comm-capable families instead of erroring when the model's
        overall winner is a dense family."""
        n = 256
        S = erdos_renyi(n, n, 48, seed=2)  # dense-ish: model favors dense shift
        A = rng.standard_normal((n, 16))
        B = rng.standard_normal((n, 16))
        out, report = repro.sddmm(S, A, B, p=8, algorithm="auto", comm="sparse")
        assert "sparse-comm" in report.label
        np.testing.assert_allclose(out.vals, sddmm_serial(S, A, B).vals, rtol=1e-8, atol=1e-10)

    def test_auto_runs_and_matches_dense(self, rng):
        S = erdos_renyi(96, 96, 2, seed=1)
        A = rng.standard_normal((96, 16))
        B = rng.standard_normal((96, 16))
        out_d, _ = repro.spmm_a(S, B, p=8, c=4, algorithm="1.5d-sparse-shift", comm="dense")
        out_a, _ = repro.spmm_a(S, B, p=8, c=4, algorithm="1.5d-sparse-shift", comm="auto")
        np.testing.assert_allclose(out_a, out_d, rtol=1e-9, atol=1e-10)


class TestVolumeReduction:
    def test_15d_sparse_shift_saves_30pct_at_low_phi(self, rng):
        """The acceptance bar: >= 30% fewer measured words/rank on the
        1.5D sparse-shift path for an ER input with phi <= 0.05."""
        n, r = 2048, 64
        S = erdos_renyi(n, n, 2, seed=5)  # phi = 2/64 ~ 0.031
        assert S.nnz / (n * r) <= 0.05
        A = rng.standard_normal((n, r))
        B = rng.standard_normal((n, r))
        out_d, rep_d = repro.fusedmm_b(
            S, A, B, p=8, c=4, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="dense",
        )
        out_s, rep_s = repro.fusedmm_b(
            S, A, B, p=8, c=4, algorithm="1.5d-sparse-shift",
            elision="replication-reuse", comm="sparse",
        )
        np.testing.assert_allclose(out_s, out_d, rtol=1e-8, atol=1e-10)
        assert rep_s.comm_words <= 0.7 * rep_d.comm_words

"""Local-kernel ablation (paper Section III-A).

Times the local building blocks under pytest-benchmark: naive vs
cache-tiled SDDMM/SpMM, the fused local kernel vs two separate calls, and
the effect of locality reordering on the blocked-kernel traffic proxy.
These justify the shared-memory design choices DESIGN.md calls out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.blocked import tiled_sddmm, tiled_spmm
from repro.kernels.fused import fusedmm_local
from repro.kernels.sddmm import sddmm_coo
from repro.kernels.spmm import spmm_a_block
from repro.sparse.coo import SparseBlock
from repro.sparse.generate import erdos_renyi, rmat
from repro.sparse.reorder import bfs_reorder, column_span_cost

from conftest import write_result


@pytest.fixture(scope="module")
def workload():
    n, r = 1 << 13, 64
    S = erdos_renyi(n, n, 16, seed=5)
    rng = np.random.default_rng(1)
    A = rng.standard_normal((n, r))
    B = rng.standard_normal((n, r))
    blk = SparseBlock(S.rows, S.cols, S.vals, S.shape)
    blk.csr()  # warm the structure cache, as repeated calls would
    blk.csr_t()
    return S, A, B, blk


def test_bench_sddmm(benchmark, workload):
    S, A, B, blk = workload
    benchmark(lambda: sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals))


def test_bench_sddmm_tiled(benchmark, workload):
    S, A, B, blk = workload
    benchmark(lambda: tiled_sddmm(A, B, blk, tile_cols=2048))


def test_bench_spmm_csr(benchmark, workload):
    S, A, B, blk = workload
    out = np.zeros_like(A)
    benchmark(lambda: spmm_a_block(blk, B, out))


def test_bench_spmm_tiled(benchmark, workload):
    S, A, B, blk = workload
    out = np.zeros_like(A)
    benchmark(lambda: tiled_spmm(blk, B, out, tile_cols=2048))


def test_bench_fused_local(benchmark, workload):
    """Fused local SDDMM+SpMM (elides intermediate sparse materialization)."""
    S, A, B, blk = workload
    out = np.zeros_like(A)
    benchmark(lambda: fusedmm_local(A, B, blk, out))


def test_bench_unfused_pair(benchmark, workload):
    """Two-step reference the fused kernel is compared against."""
    S, A, B, blk = workload

    def pair():
        vals = sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals)
        out = np.zeros_like(A)
        out += blk.csr(vals) @ B
        return out

    benchmark(pair)


def _community_graph(blocks=32, size=64, edges_per_block=400, seed=7):
    """Block-diagonal community graph, scrambled by a random permutation —
    the structure hypergraph-partitioning reorderings recover."""
    from repro.sparse.coo import CooMatrix

    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for b in range(blocks):
        rows.append(rng.integers(b * size, (b + 1) * size, edges_per_block))
        cols.append(rng.integers(b * size, (b + 1) * size, edges_per_block))
    n = blocks * size
    mat = CooMatrix(
        np.concatenate(rows).astype(np.int64),
        np.concatenate(cols).astype(np.int64),
        np.ones(blocks * edges_per_block), (n, n),
    )
    return mat.permuted(rng.permutation(n), rng.permutation(n))


def test_reordering_reduces_traffic_proxy(benchmark):
    """Jiang-et-al-style reordering lowers the blocked kernel's
    dense-row traffic (edgecut-1 proxy) on a community-structured graph."""
    base = _community_graph()

    def run():
        reordered, _, _ = bfs_reorder(base)
        return column_span_cost(base, 64), column_span_cost(reordered, 64)

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "local_kernel_ablation.txt",
        "Section III-A ablation — blocked-kernel traffic proxy "
        f"(distinct columns per 64-row block)\n"
        f"  natural order : {before:10.1f}\n"
        f"  BFS reordered : {after:10.1f}\n",
    )
    assert after <= before

"""Local-kernel ablation (paper Section III-A).

Times the local building blocks under pytest-benchmark: naive vs
cache-tiled SDDMM/SpMM, the fused local kernel vs two separate calls, and
the effect of locality reordering on the blocked-kernel traffic proxy.
These justify the shared-memory design choices DESIGN.md calls out.

Median per-kernel ms are merged into ``BENCH_sparse_comm.json`` under
the ``"local_kernels"`` key (next to the communication / session / serve
/ kernels records), so the ablation rides the same artifact and
regression trajectory as the rest of the benchmark suite.  Running the
module directly (``python bench_local_kernels.py``) measures the same
kernels best-of-3 without pytest-benchmark and writes the same record.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.kernels.blocked import tiled_sddmm, tiled_spmm
from repro.kernels.fused import fusedmm_local
from repro.kernels.sddmm import sddmm_coo
from repro.kernels.spmm import spmm_a_block
from repro.sparse.coo import SparseBlock
from repro.sparse.generate import erdos_renyi, rmat
from repro.sparse.reorder import bfs_reorder, column_span_cost

from conftest import write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sparse_comm.json"

_N, _R, _NNZ_PER_ROW = 1 << 13, 64, 16

#: median ms per kernel, filled by the tests (or the __main__ path) and
#: merged into the shared benchmark JSON once the module finishes
_MEDIANS: dict = {}


def _make_workload():
    S = erdos_renyi(_N, _N, _NNZ_PER_ROW, seed=5)
    rng = np.random.default_rng(1)
    A = rng.standard_normal((_N, _R))
    B = rng.standard_normal((_N, _R))
    blk = SparseBlock(S.rows, S.cols, S.vals, S.shape)
    blk.csr()  # warm the structure cache, as repeated calls would
    blk.csr_t()
    return S, A, B, blk


@pytest.fixture(scope="module")
def workload():
    return _make_workload()


@pytest.fixture(scope="module", autouse=True)
def _emit_after_module():
    yield
    if _MEDIANS:
        emit(_MEDIANS)


def _record(name: str, benchmark) -> None:
    _MEDIANS[name] = benchmark.stats.stats.median * 1e3


def emit(median_ms: dict) -> None:
    doc = {}
    if JSON_PATH.exists():
        doc = json.loads(JSON_PATH.read_text())
    doc["local_kernels"] = {
        "config": {"n": _N, "r": _R, "nnz_per_row": _NNZ_PER_ROW},
        "median_ms": {k: round(v, 4) for k, v in sorted(median_ms.items())},
    }
    JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")


def test_bench_sddmm(benchmark, workload):
    S, A, B, blk = workload
    benchmark(lambda: sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals))
    _record("sddmm", benchmark)


def test_bench_sddmm_tiled(benchmark, workload):
    S, A, B, blk = workload
    benchmark(lambda: tiled_sddmm(A, B, blk, tile_cols=2048))
    _record("sddmm_tiled", benchmark)


def test_bench_spmm_csr(benchmark, workload):
    S, A, B, blk = workload
    out = np.zeros_like(A)
    benchmark(lambda: spmm_a_block(blk, B, out))
    _record("spmm_csr", benchmark)


def test_bench_spmm_tiled(benchmark, workload):
    S, A, B, blk = workload
    out = np.zeros_like(A)
    benchmark(lambda: tiled_spmm(blk, B, out, tile_cols=2048))
    _record("spmm_tiled", benchmark)


def test_bench_fused_local(benchmark, workload):
    """Fused local SDDMM+SpMM (elides intermediate sparse materialization)."""
    S, A, B, blk = workload
    out = np.zeros_like(A)
    benchmark(lambda: fusedmm_local(A, B, blk, out))
    _record("fused_local", benchmark)


def test_bench_unfused_pair(benchmark, workload):
    """Two-step reference the fused kernel is compared against."""
    S, A, B, blk = workload

    def pair():
        vals = sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals)
        out = np.zeros_like(A)
        out += blk.csr(vals) @ B
        return out

    benchmark(pair)
    _record("unfused_pair", benchmark)


def _community_graph(blocks=32, size=64, edges_per_block=400, seed=7):
    """Block-diagonal community graph, scrambled by a random permutation —
    the structure hypergraph-partitioning reorderings recover."""
    from repro.sparse.coo import CooMatrix

    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for b in range(blocks):
        rows.append(rng.integers(b * size, (b + 1) * size, edges_per_block))
        cols.append(rng.integers(b * size, (b + 1) * size, edges_per_block))
    n = blocks * size
    mat = CooMatrix(
        np.concatenate(rows).astype(np.int64),
        np.concatenate(cols).astype(np.int64),
        np.ones(blocks * edges_per_block), (n, n),
    )
    return mat.permuted(rng.permutation(n), rng.permutation(n))


def test_reordering_reduces_traffic_proxy(benchmark):
    """Jiang-et-al-style reordering lowers the blocked kernel's
    dense-row traffic (edgecut-1 proxy) on a community-structured graph."""
    base = _community_graph()

    def run():
        reordered, _, _ = bfs_reorder(base)
        return column_span_cost(base, 64), column_span_cost(reordered, 64)

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "local_kernel_ablation.txt",
        "Section III-A ablation — blocked-kernel traffic proxy "
        f"(distinct columns per 64-row block)\n"
        f"  natural order : {before:10.1f}\n"
        f"  BFS reordered : {after:10.1f}\n",
    )
    assert after <= before


if __name__ == "__main__":
    S, A, B, blk = _make_workload()
    out = np.zeros_like(A)

    def pair():
        vals = sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals)
        acc = np.zeros_like(A)
        acc += blk.csr(vals) @ B
        return acc

    cases = {
        "sddmm": lambda: sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals),
        "sddmm_tiled": lambda: tiled_sddmm(A, B, blk, tile_cols=2048),
        "spmm_csr": lambda: spmm_a_block(blk, B, out),
        "spmm_tiled": lambda: tiled_spmm(blk, B, out, tile_cols=2048),
        "fused_local": lambda: fusedmm_local(A, B, blk, np.zeros_like(A)),
        "unfused_pair": pair,
    }
    timings = {}
    for name, fn in cases.items():
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        timings[name] = best * 1e3
    emit(timings)
    print(f"updated {JSON_PATH}")

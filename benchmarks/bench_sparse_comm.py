"""Dense vs sparse communication: measured words and buffer bytes/rank.

For each nonzero density, runs the same FusedMM twice — once with the
dense ring collectives and once with the need-list neighborhood
collectives (``comm="sparse"``, packed buffers) — on the two
sparse-comm-capable families, checks the outputs coincide, and reports
the measured per-rank communication-word reduction *and* the peak
panel-buffer footprint of each mode.  Emits ``BENCH_sparse_comm.json``
at the repository root for the performance trajectory, alongside the
usual text table under ``benchmarks/results/``.

Headline rows (Erdős–Rényi, ``phi = nnz/(n r) <= 0.05``, 1.5D
sparse-shift): >= 30% word reduction AND >= 50% peak-gather-buffer
reduction (the packed panels vs the full-height ``m x sw`` panels the
pre-packing subsystem allocated); this benchmark asserts both.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

import repro
from repro.harness.reporting import format_table
from repro.model.costs import fusedmm_cost, fusedmm_cost_sparse

from conftest import write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sparse_comm.json"

CASES = [
    # (family, elision, p, c)
    ("1.5d-sparse-shift", "replication-reuse", 8, 4),
    ("2.5d-sparse-replicate", "none", 8, 2),
]


def measure(scale: str, backend: str = "threads"):
    n = 2048 if scale == "small" else 8192
    r = 64
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, r))
    B = rng.standard_normal((n, r))

    records = []
    for nnz_per_row in (1, 2, 4, 8, 16, 32):
        S = repro.erdos_renyi(n, n, nnz_per_row, seed=7)
        phi = S.nnz / (n * r)
        for name, elision, p, c in CASES:
            out_d, rep_d = repro.fusedmm_b(
                S, A, B, p=p, c=c, algorithm=name, elision=elision,
                comm="dense", backend=backend,
            )
            out_s, rep_s = repro.fusedmm_b(
                S, A, B, p=p, c=c, algorithm=name, elision=elision,
                comm="sparse", backend=backend,
            )
            np.testing.assert_allclose(out_s, out_d, rtol=1e-8, atol=1e-10)
            key = f"{name}/{elision}"
            model_d = fusedmm_cost(key, n, r, p, c, phi)
            model_s = fusedmm_cost_sparse(key, n, r, p, c, phi)
            records.append(
                {
                    "algorithm": name,
                    "elision": elision,
                    "n": n,
                    "r": r,
                    "p": p,
                    "c": c,
                    "nnz": S.nnz,
                    "phi": round(phi, 5),
                    "dense_words_per_rank": rep_d.comm_words,
                    "sparse_words_per_rank": rep_s.comm_words,
                    "reduction_pct": round(
                        100.0 * (1.0 - rep_s.comm_words / rep_d.comm_words), 2
                    ),
                    "model_dense_words": round(model_d.words, 1),
                    "model_sparse_words": round(model_s.words, 1),
                    "dense_messages_per_rank": rep_d.comm_messages,
                    "sparse_messages_per_rank": rep_s.comm_messages,
                    "dense_peak_buffer_bytes": rep_d.peak_buffer_bytes,
                    "sparse_peak_buffer_bytes": rep_s.peak_buffer_bytes,
                    "buffer_reduction_pct": round(
                        100.0
                        * (1.0 - rep_s.peak_buffer_bytes / rep_d.peak_buffer_bytes),
                        2,
                    )
                    if rep_d.peak_buffer_bytes
                    else 0.0,
                }
            )
    return n, r, records


def check_headline(records) -> None:
    """The acceptance bars at phi <= 0.05 on the 1.5D sparse-shift path:
    >= 30% fewer words AND >= 50% smaller peak gather buffers."""
    low_phi = [
        rec
        for rec in records
        if rec["algorithm"] == "1.5d-sparse-shift" and rec["phi"] <= 0.05
    ]
    assert low_phi, "no phi <= 0.05 configuration measured"
    for rec in low_phi:
        assert rec["reduction_pct"] >= 30.0, (
            f"expected >= 30% word reduction at phi={rec['phi']}, "
            f"got {rec['reduction_pct']}%"
        )
        assert rec["buffer_reduction_pct"] >= 50.0, (
            f"expected >= 50% peak-buffer reduction at phi={rec['phi']}, "
            f"got {rec['buffer_reduction_pct']}%"
        )


def emit(n, r, records) -> None:
    JSON_PATH.write_text(
        json.dumps(
            {"benchmark": "sparse_comm", "n": n, "r": r, "records": records},
            indent=2,
        )
        + "\n"
    )
    rows = [
        [
            f"{rec['algorithm']}/{rec['elision']}",
            rec["phi"],
            rec["dense_words_per_rank"],
            rec["sparse_words_per_rank"],
            f"{rec['reduction_pct']:.1f}%",
            rec["dense_peak_buffer_bytes"],
            rec["sparse_peak_buffer_bytes"],
            f"{rec['buffer_reduction_pct']:.1f}%",
        ]
        for rec in records
    ]
    write_result(
        "sparse_comm.txt",
        f"Dense vs sparse communication — measured FusedMM words/rank and "
        f"peak panel-buffer bytes/rank (n={n}, r={r})\n"
        + format_table(
            [
                "variant",
                "phi",
                "dense words",
                "sparse words",
                "reduction",
                "dense buf B",
                "sparse buf B",
                "buf red.",
            ],
            rows,
        ),
    )


def test_bench_sparse_comm(benchmark, scale):
    n, r, records = benchmark.pedantic(lambda: measure(scale), rounds=1, iterations=1)
    check_headline(records)
    emit(n, r, records)


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--backend", default="threads", choices=["threads", "mpi"],
        help="execution backend; backend='mpi' must be launched under "
        "`mpirun -n 8` (the benchmark grid plans p=8)",
    )
    ap.add_argument("--scale", default="small", choices=["small", "large"])
    cli_args = ap.parse_args()
    n, r, records = measure(cli_args.scale, backend=cli_args.backend)
    check_headline(records)
    emit(n, r, records)
    print(f"wrote {JSON_PATH}")

"""Table IV: optimal replication factors.

Regenerates the paper's Table IV from the closed forms and verifies each
against a brute-force minimization of the Table III cost over a fine grid
of replication factors (the closed form must be the continuous argmin).
"""

from __future__ import annotations

import numpy as np

from repro.harness.reporting import format_table
from repro.model.costs import fusedmm_cost
from repro.model.optimal import optimal_c_continuous

from conftest import write_result

ROWS = [
    ("1.5d-dense-shift/none", "sqrt(p)"),
    ("1.5d-dense-shift/replication-reuse", "sqrt(2p)"),
    ("1.5d-dense-shift/local-kernel-fusion", "sqrt(p/2)"),
    ("1.5d-sparse-shift/replication-reuse", "sqrt(6 p phi)"),
    ("2.5d-dense-replicate/none", "cbrt(p (1+3phi)^2 / 4)"),
    ("2.5d-dense-replicate/replication-reuse", "cbrt(p (1+3phi)^2)"),
    # the paper prints cbrt(p/(2phi/3)^2); the argmin of its Table III
    # expression is cbrt(p/(3phi/2)^2) — see repro/model/optimal.py
    ("2.5d-sparse-replicate/none", "cbrt(p / (3phi/2)^2)"),
]


def _brute_force_c(key, n, r, p, phi):
    """Continuous-ish argmin of the Table III words over c in [1, p]."""
    cs = np.linspace(1.0, p, 4096)
    best_c, best_w = 1.0, np.inf
    for c in cs:
        # evaluate the continuous cost expression by calling the model at
        # the two bracketing integers and interpolating is messy; instead
        # use the model formulas directly with fractional c via the same
        # arithmetic (they are smooth in c)
        try:
            w = _smooth_words(key, n, r, p, c, phi)
        except ValueError:
            continue
        if w < best_w:
            best_c, best_w = c, w
    return best_c


def _smooth_words(key, n, r, p, c, phi):
    import math

    nr = n * r
    ag = nr * (c - 1) / p
    if key == "1.5d-dense-shift/none":
        return 2 * ag + 2 * nr / c
    if key == "1.5d-dense-shift/replication-reuse":
        return ag + 2 * nr / c
    if key == "1.5d-dense-shift/local-kernel-fusion":
        return 2 * ag + nr / c
    if key == "1.5d-sparse-shift/replication-reuse":
        return ag + 6 * phi * nr / c
    if key == "2.5d-dense-replicate/none":
        return 2 * ag + (6 * phi + 2) * nr / math.sqrt(p * c)
    if key == "2.5d-dense-replicate/replication-reuse":
        return ag + (6 * phi + 2) * nr / math.sqrt(p * c)
    if key == "2.5d-sparse-replicate/none":
        return 3 * phi * nr * (c - 1) / p + 4 * nr / math.sqrt(p * c)
    raise ValueError(key)


def test_table4_optimal_replication_factors(benchmark):
    n, r, p, phi = 1 << 20, 256, 256, 0.125

    def run():
        rows = []
        for key, formula in ROWS:
            closed = optimal_c_continuous(key, p, phi)
            brute = _brute_force_c(key, n, r, p, phi)
            rows.append([key, formula, f"{closed:.3f}", f"{brute:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table4_optimal_c.txt",
        f"Table IV — optimal replication factors (p={p}, phi={phi})\n"
        + format_table(["variant", "closed form", "value", "brute force"], rows),
    )

    for key, _, closed, brute in rows:
        closed, brute = float(closed), float(brute)
        assert abs(closed - brute) / brute < 0.02, (key, closed, brute)

    # the ordering claim that drives Figure 7
    order = {key: float(c) for key, _, c, _ in rows}
    assert (
        order["1.5d-dense-shift/replication-reuse"]
        > order["1.5d-dense-shift/none"]
        > order["1.5d-dense-shift/local-kernel-fusion"]
    )

"""CI benchmark regression gate: fresh BENCH_sparse_comm.json vs baseline.

Compares the freshly measured ``BENCH_sparse_comm.json`` (written by
``bench_sparse_comm.py`` + ``bench_session.py``) against the committed
``benchmarks/baseline/BENCH_sparse_comm.baseline.json`` and fails when a
headline metric regressed beyond the tolerance (default 15%):

* **words saved** — per (algorithm, elision, phi) record at the paper's
  interesting densities (``phi <= 0.05``): the measured communication-word
  reduction of the sparse path must not drop by more than the tolerance,
  relative.  Word counts are deterministic, so genuine drift here means a
  planner/collective change leaked traffic.
* **peak buffers** — same records: the sparse path's peak panel-buffer
  bytes must not grow by more than the tolerance.  Also deterministic.
* **amortized ms per call** — per session record: wall-clock ms are
  machine-dependent, so the gate compares the machine-normalized *ratios*
  (one-shot/pool and spawn-per-call/pool).  A ratio may degrade within
  tolerance, or stay at parity (>= 1.0) — only "resident pool became
  measurably slower than the mode it exists to beat" fails.
* **batched serving** — per workload under the ``"serve"`` key (written
  by ``bench_serve.py``): the batched closed-loop p99 request latency
  must not grow beyond tolerance, the batched throughput must not drop
  beyond tolerance, and micro-batching must keep beating unbatched
  serving on amortized per-request latency (speedup >= 1.0).  Latency
  and throughput are wall-clock, so these two get the same treatment as
  the tracer-off gate below: absolute, against a baseline cut on the
  same class of runner.
* **kernel backends** — under the ``"kernels"`` key (written by
  ``bench_kernels.py``, present only in runs that executed it): the
  numpy per-kernel ms must stay within twice the tolerance of baseline,
  and when the fresh run measured numba, the compiled kernels must clear
  the speedup floors the fresh record itself declares.
* **tracer-off ms per call** — the one absolute-ms gate: the untraced
  (default) pooled per-call time must stay within tolerance of the
  baseline, so span-tracing instrumentation can never tax the disabled
  hot path unnoticed (ratios cannot catch a uniform overhead).  The
  timeline-derived ``overlap_window_occupancy`` is additionally checked
  to be a valid fraction.

Usage::

    python bench_compare.py [--baseline PATH] [--fresh PATH] [--tolerance 0.15]

Exit status 0 when every gate passes, 1 otherwise (with a per-metric
report either way).  ``--update-baseline`` rewrites the baseline from the
fresh file instead of comparing (for intentional re-baselining commits).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FRESH_PATH = REPO_ROOT / "BENCH_sparse_comm.json"
BASELINE_PATH = Path(__file__).resolve().parent / "baseline" / "BENCH_sparse_comm.baseline.json"

#: densities the paper's sparse-communication claims are made at
HEADLINE_PHI = 0.05


def _comm_key(rec) -> tuple:
    return (rec["algorithm"], rec["elision"], rec["phi"])


def _session_key(rec) -> tuple:
    return (rec["algorithm"], rec["elision"], rec["comm"])


class Gate:
    """Accumulates pass/fail lines and the overall verdict."""

    def __init__(self) -> None:
        self.failures: list[str] = []
        self.lines: list[str] = []

    def check(self, label: str, ok: bool, detail: str) -> None:
        mark = "ok  " if ok else "FAIL"
        self.lines.append(f"  [{mark}] {label}: {detail}")
        if not ok:
            self.failures.append(f"{label}: {detail}")

    def report(self) -> int:
        print("\n".join(self.lines))
        if self.failures:
            print(f"\nbench_compare: {len(self.failures)} regression(s) "
                  f"beyond tolerance")
            return 1
        print("\nbench_compare: all headline metrics within tolerance")
        return 0


def compare_words_and_buffers(gate: Gate, base: dict, fresh: dict, tol: float) -> None:
    base_recs = {_comm_key(r): r for r in base.get("records", [])}
    fresh_recs = {_comm_key(r): r for r in fresh.get("records", [])}
    missing = sorted(set(base_recs) - set(fresh_recs))
    for key in missing:
        gate.check(f"record {key}", False, "present in baseline, missing in fresh run")
    for key in sorted(set(base_recs) & set(fresh_recs)):
        if key[2] > HEADLINE_PHI:
            continue  # headline claims live at phi <= 0.05
        b, f = base_recs[key], fresh_recs[key]
        label = f"{key[0]}/{key[1]}@phi={key[2]}"

        # words saved (higher is better); tiny baselines are noise-floor
        b_red, f_red = b["reduction_pct"], f["reduction_pct"]
        if b_red >= 5.0:
            floor = b_red * (1.0 - tol)
            gate.check(
                f"words-saved {label}",
                f_red >= floor,
                f"baseline {b_red:.1f}% fresh {f_red:.1f}% (floor {floor:.1f}%)",
            )

        # sparse-path peak buffer bytes (lower is better)
        b_buf, f_buf = b["sparse_peak_buffer_bytes"], f["sparse_peak_buffer_bytes"]
        if b_buf > 0:
            ceil = b_buf * (1.0 + tol)
            gate.check(
                f"peak-buffer {label}",
                f_buf <= ceil,
                f"baseline {b_buf} B fresh {f_buf} B (ceiling {ceil:.0f} B)",
            )


def compare_session_ms(gate: Gate, base: dict, fresh: dict, tol: float) -> None:
    base_sess = {_session_key(r): r for r in base.get("session", {}).get("records", [])}
    fresh_sess = {_session_key(r): r for r in fresh.get("session", {}).get("records", [])}
    missing = sorted(set(base_sess) - set(fresh_sess))
    for key in missing:
        gate.check(f"session {key}", False, "present in baseline, missing in fresh run")
    # wall-clock ms are machine-dependent: gate on the machine-normalized
    # ratios, and accept parity (>= 1.0) regardless of the baseline ratio.
    # The sync/overlap ratio sits near 1.0 by construction (two best-of-N
    # timings of identical kernels), so its noise is double-sided and the
    # pool ratios' margin (baselines 1.2-1.9x) does not exist — it gets
    # twice the tolerance so routine scheduler jitter cannot flip it.
    ratio_metrics = [
        ("amortized-ms one-shot/pool", "speedup", 1.0),
        ("amortized-ms spawn/pool", "pool_speedup_vs_spawn", 1.0),
        ("amortized-ms sync/overlap", "overlap_speedup", 2.0),
    ]
    for key in sorted(set(base_sess) & set(fresh_sess)):
        b, f = base_sess[key], fresh_sess[key]
        label = "/".join(key)
        for name, field, noise in ratio_metrics:
            if field not in b:
                continue  # metric introduced after this baseline was cut
            b_ratio, f_ratio = b[field], f.get(field, 0.0)
            floor = min(b_ratio * (1.0 - noise * tol), 1.0)
            gate.check(
                f"{name} {label}",
                f_ratio >= floor,
                f"baseline {b_ratio:.2f}x fresh {f_ratio:.2f}x (floor {floor:.2f}x)",
            )

        # overlap efficiency: the measured fraction of the perfectly-
        # hideable communication the pipeline captured.  The structure is
        # deterministic (the same exchanges are posted behind the same
        # kernels) but the *split* is a wall-clock race whose value
        # depends on host topology — a single-core recorder reports ~1.0
        # (peers' sends complete while the waiter is descheduled) where a
        # multicore runner measures a genuine mid-range fraction — so a
        # relative floor would encode the baseline machine, not the code.
        # The stable, machine-independent property is the headline one:
        # a shifting family that hid *any* communication in the baseline
        # must never regress to hiding none.
        if "overlap_efficiency" in b and b["overlap_efficiency"] > 0.0:
            b_eff = b["overlap_efficiency"]
            f_eff = f.get("overlap_efficiency", 0.0)
            gate.check(
                f"overlap-efficiency {label}",
                f_eff > 0.0,
                f"baseline {b_eff:.2f} fresh {f_eff:.2f} (must stay > 0)",
            )

        # tracer-off per-call wall time: tracing is opt-in, so the default
        # (untraced) hot path must not pick up instrumentation overhead.
        # This is the one absolute-ms gate — it exists precisely to catch
        # "someone made the disabled path cost something", which the
        # machine-normalized ratios above cannot see because every mode
        # pays the same overhead.
        if "session_ms_per_call" in b and b["session_ms_per_call"] > 0:
            b_ms, f_ms = b["session_ms_per_call"], f.get("session_ms_per_call", 0.0)
            ceil = b_ms * (1.0 + tol)
            gate.check(
                f"tracer-off ms/call {label}",
                0.0 < f_ms <= ceil,
                f"baseline {b_ms:.3f} ms fresh {f_ms:.3f} ms (ceiling {ceil:.3f} ms)",
            )

        # timeline-derived overlap-window occupancy: a fraction by
        # construction; its magnitude is host-dependent (see the
        # overlap-efficiency note) so only its domain is gated
        if "overlap_window_occupancy" in f:
            f_occ = f["overlap_window_occupancy"]
            gate.check(
                f"overlap-window-occupancy {label}",
                0.0 <= f_occ <= 1.0,
                f"fresh {f_occ:.4f} (must be within [0, 1])",
            )


def compare_serve(gate: Gate, base: dict, fresh: dict, tol: float) -> None:
    base_srv = base.get("serve", {})
    fresh_srv = fresh.get("serve", {})
    for name in sorted(k for k in base_srv if k != "config"):
        if name not in fresh_srv:
            gate.check(f"serve {name}", False,
                       "present in baseline, missing in fresh run")
            continue
        b, f = base_srv[name]["batched"], fresh_srv[name]["batched"]
        # p99 and throughput are single-sided wall-clock measurements
        # (even best-of-rounds, a closed loop's tail tracks total wall
        # time), so like the sync/overlap ratio above they get twice the
        # tolerance — routine scheduler jitter on shared runners must not
        # flip them, while a genuine 2x regression still fails hard
        noise = 2.0

        # batched p99 request latency (lower is better): queue wait +
        # panel fill + one session call — the tail a serving client sees
        b_p99 = b["latency_ms"]["p99"]
        f_p99 = f.get("latency_ms", {}).get("p99", float("inf"))
        if b_p99 > 0:
            ceil = b_p99 * (1.0 + noise * tol)
            gate.check(
                f"serve-p99 {name}",
                0.0 < f_p99 <= ceil,
                f"baseline {b_p99:.3f} ms fresh {f_p99:.3f} ms "
                f"(ceiling {ceil:.3f} ms)",
            )

        # batched closed-loop throughput (higher is better)
        b_rps = b["throughput_rps"]
        f_rps = f.get("throughput_rps", 0.0)
        if b_rps > 0:
            floor = b_rps * (1.0 - noise * tol)
            gate.check(
                f"serve-throughput {name}",
                f_rps >= floor,
                f"baseline {b_rps:.1f} req/s fresh {f_rps:.1f} req/s "
                f"(floor {floor:.1f} req/s)",
            )

        # the machine-normalized headline: micro-batching must keep
        # beating unbatched serving on amortized per-request latency
        f_speedup = fresh_srv[name].get("amortized_speedup", 0.0)
        gate.check(
            f"serve-amortized-speedup {name}",
            f_speedup >= 1.0,
            f"fresh {f_speedup:.2f}x (batched must stay at or above "
            f"unbatched parity)",
        )


def compare_kernels(gate: Gate, base: dict, fresh: dict, tol: float) -> None:
    """Kernel-backend record (written by ``bench_kernels.py``).

    Skips silently when the fresh run did not produce the ``"kernels"``
    key (the sparse-comm-smoke lane does not run bench_kernels.py — only
    the kernel-backends lane does).  Two gates:

    * numpy per-kernel ms vs baseline — the default path's absolute
      cost.  Wall-clock and single-sided, so like the serve latencies it
      gets twice the tolerance.
    * numba speedup floors — re-asserted from the *fresh* record's own
      ``"floors"`` (bench_kernels.py embeds its gate so this script
      needs no import), only when the fresh run measured numba.
    """
    fresh_k = fresh.get("kernels")
    if not fresh_k:
        return
    base_k = base.get("kernels", {})
    noise = 2.0

    base_np = base_k.get("backends", {}).get("numpy", {})
    fresh_np = fresh_k.get("backends", {}).get("numpy", {})
    for kernel in sorted(base_np):
        if kernel not in fresh_np:
            gate.check(f"kernel-ms {kernel}", False,
                       "present in baseline, missing in fresh run")
            continue
        b_ms, f_ms = base_np[kernel], fresh_np[kernel]
        if b_ms <= 0:
            continue
        ceil = b_ms * (1.0 + noise * tol)
        gate.check(
            f"kernel-ms numpy/{kernel}",
            0.0 < f_ms <= ceil,
            f"baseline {b_ms:.3f} ms fresh {f_ms:.3f} ms (ceiling {ceil:.3f} ms)",
        )

    speedup = fresh_k.get("speedup")
    if speedup:
        for kernel, floor in fresh_k.get("floors", {}).items():
            got = speedup.get(kernel, 0.0)
            gate.check(
                f"kernel-speedup numba/{kernel}",
                got >= floor,
                f"fresh {got:.2f}x (floor {floor:.1f}x)",
            )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    ap.add_argument("--fresh", type=Path, default=FRESH_PATH)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="relative regression tolerance (default 0.15)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from the fresh file and exit")
    args = ap.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"baseline updated from {args.fresh}")
        return 0
    base = json.loads(args.baseline.read_text())

    gate = Gate()
    print(f"comparing {args.fresh} against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    compare_words_and_buffers(gate, base, fresh, args.tolerance)
    compare_session_ms(gate, base, fresh, args.tolerance)
    compare_serve(gate, base, fresh, args.tolerance)
    compare_kernels(gate, base, fresh, args.tolerance)
    return gate.report()


if __name__ == "__main__":
    sys.exit(main())

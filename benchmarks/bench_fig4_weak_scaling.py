"""Figure 4: weak scaling of all eight FusedMM variants, setups 1 and 2.

Paper shape to reproduce (256 KNL nodes, r=256, side 2^16 p):

* Setup 1 (phi constant ~ 1/8): the 1.5D *sparse-shifting* algorithm is
  the best performer overall; replication reuse and local kernel fusion
  both clearly beat their unoptimized counterparts at scale.
* Setup 2 (phi doubles every step): the ranking inverts — the 1.5D
  *dense-shifting* algorithm with local kernel fusion wins and the
  sparse-shifting algorithm decays (1.94x slower at the paper's 256
  nodes).

Here the same sweep runs at laptop scale on the thread runtime and is
costed with Cori-like alpha-beta-gamma parameters on measured traffic.
"""

from __future__ import annotations

from collections import defaultdict

from repro.harness.reporting import print_series
from repro.harness.weak_scaling import FIG4_VARIANTS, weak_scaling_experiment

from conftest import write_result


def _series(results):
    out = defaultdict(dict)
    for v in results:
        out[v.label][v.p] = v.modeled_seconds
    return out


def _run_setup(setup: int, p_list, base_log2, r):
    return weak_scaling_experiment(
        setup, p_list, r=r, base_log2=base_log2, base_nnz_row=8,
        variants=FIG4_VARIANTS, calls=1, max_c=8,
    )


def test_fig4_weak_scaling(benchmark, scale):
    p_list = [1, 4, 16] if scale == "small" else [1, 4, 16, 64]
    base = 10 if scale == "small" else 11
    r = 32

    def run():
        return (_run_setup(1, p_list, base, r), _run_setup(2, p_list, base, r))

    res1, res2 = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for setup, res in ((1, res1), (2, res2)):
        series = _series(res)
        table = {lbl: [vals.get(p, float("nan")) for p in p_list] for lbl, vals in series.items()}
        lines.append(
            print_series(
                f"Figure 4 — weak scaling setup {setup} "
                f"(modeled seconds per FusedMM, cori-knl)",
                table,
                p_list,
            )
        )
    write_result("fig4_weak_scaling.txt", "\n\n".join(lines))

    big_p = p_list[-1]
    at1 = {v.label: v for v in res1 if v.p == big_p}
    at2 = {v.label: v for v in res2 if v.p == big_p}

    # --- paper claims (shape, not absolute numbers) -------------------
    # setup 1: phi is low and constant -> sparse shifting wins
    best1 = min(at1.values(), key=lambda v: v.modeled_seconds)
    assert best1.algorithm == "1.5d-sparse-shift", best1.label
    # setup 2: phi has doubled repeatedly -> dense shifting LKF wins
    best2 = min(at2.values(), key=lambda v: v.modeled_seconds)
    assert best2.algorithm == "1.5d-dense-shift", best2.label
    # elision beats no elision for the dense-shifting family in both setups
    for at in (at1, at2):
        none = at["1.5d-dense-shift/none"].modeled_seconds
        assert at["1.5d-dense-shift/replication-reuse"].modeled_seconds <= none
        assert at["1.5d-dense-shift/local-kernel-fusion"].modeled_seconds <= none
    # the sparse-shift algorithm degrades relative to dense-shift LKF
    # when moving from setup 1 to setup 2
    ratio1 = (
        at1["1.5d-sparse-shift/replication-reuse"].modeled_seconds
        / at1["1.5d-dense-shift/local-kernel-fusion"].modeled_seconds
    )
    ratio2 = (
        at2["1.5d-sparse-shift/replication-reuse"].modeled_seconds
        / at2["1.5d-dense-shift/local-kernel-fusion"].modeled_seconds
    )
    assert ratio2 > ratio1

"""Figure 5: weak-scaling (setup 1) time breakdown into replication,
propagation and computation.

Paper shape to reproduce: communication time grows ~sqrt(p) for the 1.5D
algorithms and ~cbrt(p) for the 2.5D algorithms while per-rank computation
stays flat, so communication progressively dominates; the 2.5D algorithms
spend relatively more of their communication in replication.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.harness.reporting import format_table
from repro.harness.weak_scaling import weak_scaling_experiment
from repro.types import Elision

from conftest import write_result

VARIANTS = (
    ("1.5d-dense-shift", Elision.REPLICATION_REUSE),
    ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION),
    ("1.5d-sparse-shift", Elision.REPLICATION_REUSE),
    ("2.5d-dense-replicate", Elision.REPLICATION_REUSE),
    ("2.5d-sparse-replicate", Elision.NONE),
)


def test_fig5_time_breakdown(benchmark, scale):
    p_list = [4, 16] if scale == "small" else [4, 16, 64]
    base = 10 if scale == "small" else 11

    def run():
        return weak_scaling_experiment(
            1, p_list, r=32, base_log2=base, base_nnz_row=8,
            variants=VARIANTS, max_c=8,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    per_variant = defaultdict(dict)
    for v in results:
        rows.append(
            [
                v.label, v.p, v.best_c,
                v.replication_seconds, v.propagation_seconds, v.computation_seconds,
            ]
        )
        per_variant[v.label][v.p] = v

    write_result(
        "fig5_breakdown.txt",
        "Figure 5 — weak scaling setup 1 time breakdown (modeled seconds, cori-knl)\n"
        + format_table(
            ["variant", "p", "c*", "replication", "propagation", "computation"], rows
        ),
    )

    # --- paper claims ---------------------------------------------------
    growth = p_list[-1] / p_list[0]
    for label, per_p in per_variant.items():
        lo, hi = per_p[p_list[0]], per_p[p_list[-1]]
        comm_lo = lo.replication_seconds + lo.propagation_seconds
        comm_hi = hi.replication_seconds + hi.propagation_seconds
        # communication grows with p (the dominant trend of Figure 5) ...
        assert comm_hi > comm_lo
        # ... bounded by the sqrt(p) (1.5D) / cbrt(p^2)-ish (2.5D) laws,
        # with slack for discrete replication factors
        law = math.sqrt(growth) if label.startswith("1.5d") else growth ** (2 / 3)
        assert comm_hi / comm_lo < 3.0 * law
        # computation per rank is flat under weak scaling
        np.testing.assert_allclose(
            hi.computation_seconds, lo.computation_seconds, rtol=0.35
        )

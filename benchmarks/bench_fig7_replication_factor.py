"""Figure 7: predicted vs observed optimal replication factor (weak
scaling setup 1, 1.5D dense-shifting variants).

Paper shape to reproduce: the optimal c for replication reuse is at least
that of the unoptimized sequence, which in turn is at least that of local
kernel fusion (the elision strategies change the optimal replication
factor — the central mechanism of Section IV-B), and all three grow like
sqrt(p).
"""

from __future__ import annotations

from collections import defaultdict

from repro.harness.reporting import format_table
from repro.harness.sweeps import replication_factor_sweep

from conftest import write_result


def test_fig7_optimal_replication_factor(benchmark, scale):
    p_list = [4, 16] if scale == "small" else [4, 16, 64]
    base = 9 if scale == "small" else 10

    def run():
        return replication_factor_sweep(p_list, r=32, base_log2=base, base_nnz_row=8)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [[r.variant, r.p, f"{r.predicted_c:.2f}", r.observed_c] for r in rows]
    write_result(
        "fig7_replication_factor.txt",
        "Figure 7 — predicted vs observed optimal replication factor\n"
        + format_table(["variant", "p", "predicted c", "observed c"], table),
    )

    by_p = defaultdict(dict)
    for r in rows:
        by_p[r.p][r.variant.rsplit("/", 1)[1]] = r

    for p, d in by_p.items():
        # ordering claim: c_reuse >= c_none >= c_lkf (predicted is strict)
        assert (
            d["replication-reuse"].predicted_c
            > d["none"].predicted_c
            > d["local-kernel-fusion"].predicted_c
        )
        assert (
            d["replication-reuse"].observed_c
            >= d["local-kernel-fusion"].observed_c
        )
        # observed within one power of two of predicted (discrete feasible set)
        for r in d.values():
            assert 0.5 <= r.observed_c / r.predicted_c <= 2.5

    # optimal c grows with p
    for variant in ("replication-reuse", "none", "local-kernel-fusion"):
        cs = [by_p[p][variant].observed_c for p in p_list]
        assert cs[-1] >= cs[0]

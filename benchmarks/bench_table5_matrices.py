"""Table V: the strong-scaling matrix inventory.

Regenerates the paper's matrix table for the R-MAT stand-ins, checking
that each preserves the property the evaluation depends on — the
nonzeros-per-row profile (hence phi at any r) and the relative ordering
of the five matrices.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.sparse.generate import REALWORLD_PROFILES, realworld_standin
from repro.sparse.stats import matrix_stats

from conftest import write_result


def test_table5_matrix_standins(benchmark, scale):
    mat_scale = 11 if scale == "small" else 13

    def run():
        rows = []
        stats = {}
        for name, prof in REALWORLD_PROFILES.items():
            S = realworld_standin(name, scale=mat_scale, seed=1)
            st = matrix_stats(S, name)
            stats[name] = st
            rows.append(
                [name,
                 f"{prof.paper_rows:,}", f"{prof.paper_nnz:,}",
                 f"{prof.nnz_per_row:.1f}",
                 f"{st.rows:,}", f"{st.nnz:,}",
                 f"{st.nnz_per_row_mean:.1f}",
                 f"{st.phi(128):.3f}"]
            )
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table5_matrices.txt",
        "Table V — real-world matrices (paper) vs R-MAT stand-ins (ours)\n"
        + format_table(
            ["matrix", "paper rows", "paper nnz", "paper nnz/row",
             "our rows", "our nnz", "our nnz/row", "phi @ r=128"],
            rows,
        ),
    )

    per_row = {n: s.nnz_per_row_mean for n, s in stats.items()}
    # ordering the paper's analysis relies on: eukarya densest,
    # amazon/uk-2002 sparsest
    assert max(per_row, key=per_row.get) == "eukarya"
    assert per_row["amazon-large"] < per_row["arabic-2005"] < per_row["eukarya"]
    assert per_row["uk-2002"] < per_row["twitter7"]
    # nnz/row within 45% of the originals
    for name, prof in REALWORLD_PROFILES.items():
        assert abs(per_row[name] - prof.nnz_per_row) / prof.nnz_per_row < 0.45
    # phi at r=128 straddles the 1/3 decision boundary as in the paper
    assert stats["amazon-large"].phi(128) < 1 / 3 < stats["eukarya"].phi(128)

"""Kernel-backend comparison: numpy vs numba on the six dispatched kernels.

Times every kernel the registry dispatches (``sddmm_coo``,
``sddmm_custom`` with the structured :class:`GatScoreOp`,
``gat_edge_scores``, ``spmm_a_block``, ``spmm_b_block``,
``spmm_scatter``) under every *available* backend on one committed
workload, and records per-backend ms plus numba-over-numpy speedups into
``BENCH_sparse_comm.json`` under the ``"kernels"`` key (merged next to
the communication / session / serve records) for the CI regression gate
in ``bench_compare.py``.

Headline (asserted here whenever numba is installed, i.e. in the CI
``kernel-backends`` lane): the compiled backend must beat numpy by >=
1.5x on the FusedMM hot path — ``sddmm_coo`` (numpy pays a chunked
gather + einsum) and ``spmm_scatter`` (numpy pays a sort + reduceat
pass) — and by >= 1.2x on the fused :class:`GatScoreOp` scoring pass.
``spmm_a_block`` / ``spmm_b_block`` compete against SciPy's compiled
sequential CSR matmul, and ``gat_edge_scores`` against a pure
memory-bound fancy-index gather, so those gate on near-parity floors
(0.9x / 0.8x): the win there is parallelism, which small CI runners may
not have.  On numpy-only hosts the record still carries the numpy
timings so the regression gate can watch the default path's cost.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.harness.reporting import format_table
from repro.kernels.registry import available_kernel_backends, get_kernel_backend
from repro.kernels.sddmm import GatScoreOp, gat_edge_scores, sddmm_coo, sddmm_custom
from repro.kernels.spmm import spmm_a_block, spmm_b_block, spmm_scatter
from repro.runtime.profile import RankProfile
from repro.sparse.coo import SparseBlock
from repro.sparse.generate import erdos_renyi

from conftest import write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sparse_comm.json"

#: committed workload: the same shape class as bench_local_kernels.py
_N = 1 << 13
_NNZ_PER_ROW = 16
_R = 64
_REPEATS = 5

#: numba-over-numpy speedup floors gated in CI (see module docstring)
SPEEDUP_FLOORS = {
    "sddmm_coo": 1.5,
    "spmm_scatter": 1.5,
    "sddmm_custom": 1.2,
    "spmm_a_block": 0.9,
    "spmm_b_block": 0.9,
    "gat_edge_scores": 0.8,
}


def _best_of(fn) -> float:
    best = float("inf")
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3  # ms


def measure_backend(name: str, workload) -> dict:
    S, A, B, blk, uL, uR, gat_op = workload
    prof = RankProfile()
    backend = get_kernel_backend(name)
    if backend is not None:
        backend.warmup()
    prof.kernels = backend
    out_a = np.zeros_like(A)
    out_b = np.zeros_like(B)
    return {
        "sddmm_coo": _best_of(
            lambda: sddmm_coo(A, B, S.rows, S.cols, s_vals=S.vals, profile=prof)
        ),
        "sddmm_custom": _best_of(
            lambda: sddmm_custom(A, B, S.rows, S.cols, gat_op, profile=prof)
        ),
        "gat_edge_scores": _best_of(
            lambda: gat_edge_scores(uL, uR, S.rows, S.cols, profile=prof)
        ),
        "spmm_a_block": _best_of(lambda: spmm_a_block(blk, B, out_a, profile=prof)),
        "spmm_b_block": _best_of(lambda: spmm_b_block(blk, A, out_b, profile=prof)),
        "spmm_scatter": _best_of(
            lambda: spmm_scatter(S.rows, S.cols, S.vals, B, out_a, profile=prof)
        ),
    }


def measure() -> dict:
    S = erdos_renyi(_N, _N, _NNZ_PER_ROW, seed=5)
    rng = np.random.default_rng(1)
    A = rng.standard_normal((_N, _R))
    B = rng.standard_normal((_N, _R))
    blk = SparseBlock(S.rows, S.cols, S.vals, S.shape)
    blk.csr()  # warm the structure caches, as resident sessions would
    blk.csr_t()
    uL = rng.standard_normal(_N)
    uR = rng.standard_normal(_N)
    gat_op = GatScoreOp(rng.standard_normal(_R), rng.standard_normal(_R))
    workload = (S, A, B, blk, uL, uR, gat_op)

    backends = {b: measure_backend(b, workload) for b in available_kernel_backends()}
    record = {
        "config": {
            "n": _N,
            "nnz_per_row": _NNZ_PER_ROW,
            "r": _R,
            "repeats": _REPEATS,
        },
        "backends": backends,
        # self-describing gate: bench_compare.py re-checks these floors
        # without importing this module (it runs without PYTHONPATH)
        "floors": SPEEDUP_FLOORS,
    }
    if "numba" in backends:
        record["speedup"] = {
            k: backends["numpy"][k] / backends["numba"][k]
            for k in backends["numpy"]
        }
    return record


def check_headline(record) -> None:
    """The CI kernel-backends lane's gate: with numba installed, the
    compiled kernels must clear their per-kernel speedup floors."""
    speedup = record.get("speedup")
    if speedup is None:
        return  # numpy-only host: nothing to compare
    for kernel, floor in SPEEDUP_FLOORS.items():
        got = speedup[kernel]
        assert got >= floor, (
            f"{kernel}: numba speedup {got:.2f}x below the {floor:.1f}x floor "
            f"(numpy {record['backends']['numpy'][kernel]:.3f} ms, "
            f"numba {record['backends']['numba'][kernel]:.3f} ms)"
        )


def emit(record) -> None:
    doc = {}
    if JSON_PATH.exists():
        doc = json.loads(JSON_PATH.read_text())
    doc["kernels"] = record
    JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    kernels = sorted(record["backends"]["numpy"])
    rows = []
    for kernel in kernels:
        row = [kernel, round(record["backends"]["numpy"][kernel], 3)]
        if "numba" in record["backends"]:
            row.append(round(record["backends"]["numba"][kernel], 3))
            row.append(f"{record['speedup'][kernel]:.2f}x")
        else:
            row.extend(["-", "-"])
        rows.append(row)
    cfg = record["config"]
    write_result(
        "kernels.txt",
        f"Kernel backends (n={cfg['n']}, ~{cfg['nnz_per_row']} nnz/row, "
        f"r={cfg['r']}, best of {cfg['repeats']}) — per-kernel ms under "
        f"each available backend\n"
        + format_table(["kernel", "numpy ms", "numba ms", "speedup"], rows),
    )


def test_bench_kernels(benchmark):
    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    check_headline(record)
    emit(record)


if __name__ == "__main__":
    record = measure()
    check_headline(record)
    emit(record)
    print(f"updated {JSON_PATH}")

"""Shared configuration for the figure/table benchmarks.

Every benchmark regenerates one artifact of the paper's evaluation at
laptop scale, printing the same rows/series the paper reports and writing
them under ``benchmarks/results/``.  Scale knobs:

* ``REPRO_BENCH_SCALE=small`` (default) — minutes on a laptop.
* ``REPRO_BENCH_SCALE=large`` — bigger matrices and processor counts for
  closer-to-paper curves (tens of minutes).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print("\n" + text)

"""Micro-batched serving front-end: batched vs unbatched request cost.

Drives :func:`repro.serve.bench.bench_serve` — the closed-loop batched /
unbatched comparison plus an open-loop Poisson arrival run — over the
ALS top-k and GAT edge-scoring workloads with R-MAT power-law traffic,
and records the result into ``BENCH_sparse_comm.json`` at the repository
root (under the ``"serve"`` key, next to the communication and session
records) for the CI regression gate, alongside the usual text table
under ``benchmarks/results/``.

Headline: with the panel width at ``batch_width >= 8``, micro-batching
must beat unbatched serving (``batch_width=1``: every request pays a
full session call) on amortized per-request latency — asserted here and
gated against the committed baseline by ``bench_compare.py`` (batched
p99 latency and throughput, 15% tolerance).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.reporting import format_table
from repro.serve.bench import bench_serve

from conftest import write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sparse_comm.json"

WORKLOADS = ("als", "gat")


def measure(scale: str):
    big = scale != "small"
    return bench_serve(
        n_users=512 if big else 256,
        n_items=384 if big else 192,
        d=32 if big else 16,
        p=4,
        batch_width=16,
        n_requests=256 if big else 96,
        seed=0,
        open_loop_rate_rps=2000.0,
        workloads=WORKLOADS,
    )


def check_headline(record) -> None:
    """Micro-batching exists to amortize the per-call session cost across
    a panel: at batch_width >= 8 the batched closed loop must beat the
    unbatched one on amortized per-request latency for every workload."""
    assert record["config"]["batch_width"] >= 8
    for name in WORKLOADS:
        entry = record[name]
        b = entry["batched"]["amortized_ms_per_request"]
        u = entry["unbatched"]["amortized_ms_per_request"]
        assert b < u, (
            f"{name}: batched {b:.3f} ms/req not below unbatched {u:.3f} "
            f"ms/req at batch_width={record['config']['batch_width']}"
        )
        # the batcher must actually have formed panels (mean width > 1)
        # for the comparison to mean anything
        assert entry["batched"]["batch_size_mean"] > 1.0, (
            f"{name}: closed-loop batched run never coalesced "
            f"(mean batch {entry['batched']['batch_size_mean']:.2f})"
        )
        # nothing may be dropped on the floor in either loop
        for mode in ("batched", "unbatched", "open_loop"):
            if mode not in entry:
                continue
            outcomes = entry[mode]["outcomes"]
            bad = {
                k: v for k, v in outcomes.items()
                if k in ("failed", "timeout", "rejected") and v
            }
            assert not bad, f"{name}/{mode}: non-clean outcomes {bad}"


def emit(record) -> None:
    doc = {}
    if JSON_PATH.exists():
        doc = json.loads(JSON_PATH.read_text())
    doc["serve"] = record
    JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")

    rows = []
    for name in WORKLOADS:
        entry = record[name]
        b, u = entry["batched"], entry["unbatched"]
        row = [
            name,
            b["amortized_ms_per_request"],
            u["amortized_ms_per_request"],
            f"{entry['amortized_speedup']:.2f}x",
            round(b["latency_ms"]["p50"], 3),
            round(b["latency_ms"]["p99"], 3),
            round(b["throughput_rps"], 1),
            f"{entry['throughput_ratio']:.2f}x",
            f"{b['batch_size_mean']:.1f}",
        ]
        if "open_loop" in entry:
            o = entry["open_loop"]
            row.append(
                f"{o['latency_ms']['p99']:.2f} @ {o['offered_rps']:.0f}/s"
            )
        rows.append(row)
    cfg = record["config"]
    write_result(
        "serve.txt",
        f"Micro-batched serving (batch_width={cfg['batch_width']}, "
        f"n_requests={cfg['n_requests']}, p={cfg['p']}) — closed-loop "
        f"amortized ms/request batched vs unbatched (batch_width=1), "
        f"batched request-latency percentiles and throughput, plus the "
        f"open-loop Poisson p99 at the offered rate\n"
        + format_table(
            [
                "workload",
                "batched ms/req",
                "unbatched ms/req",
                "speedup",
                "p50 ms",
                "p99 ms",
                "req/s",
                "thrpt ratio",
                "mean batch",
                "open-loop p99",
            ],
            rows,
        ),
    )


def test_bench_serve(benchmark, scale):
    record = benchmark.pedantic(lambda: measure(scale), rounds=1, iterations=1)
    check_headline(record)
    emit(record)


if __name__ == "__main__":
    record = measure("small")
    check_headline(record)
    emit(record)
    print(f"updated {JSON_PATH}")

"""One-shot vs session-handle driver time: amortized cost per FusedMM call.

The session API (:func:`repro.plan`) pays knob resolution, layout
planning, sparse-operand partitioning and need-list/packed-index
construction **once**; each subsequent call only rebinds the dense
operands.  On top of that, the session's persistent worker pool keeps
``p`` rank threads, their communicators and per-orientation contexts
warm across calls.  This benchmark times ``calls=5`` FusedMM invocations
three ways — five independent one-shot calls, five calls on a
spawn-per-call session (``persistent=False``: threads, world and
contexts rebuilt every call), and five calls on a resident-pool session
— checks the outputs coincide bitwise, and records the amortized
per-call driver wall time of each mode.

Results are merged into ``BENCH_sparse_comm.json`` at the repository root
(under the ``"session"`` key, next to the dense-vs-sparse communication
records) for the performance trajectory, alongside the usual text table
under ``benchmarks/results/``.

Headlines: the pooled session's amortized per-call time must not exceed
the one-shot per-call time (it skips per-call re-distribution entirely)
nor the spawn-per-call session time (it skips thread spawn, communicator
splits and context builds) — both asserted, both recorded for the CI
regression gate.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

import repro
from repro.harness.reporting import format_table

from conftest import write_result

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sparse_comm.json"

CALLS = 5

CASES = [
    # (algorithm, elision, p, c, comm)
    ("1.5d-sparse-shift", "replication-reuse", 8, 4, "sparse"),
    ("1.5d-dense-shift", "local-kernel-fusion", 8, 2, "dense"),
    ("2.5d-sparse-replicate", "none", 8, 2, "sparse"),
]


def _time_one_shot(S, A, B, name, elision, p, c, comm):
    outs, ticks = [], []
    for _ in range(CALLS):
        t0 = time.perf_counter()
        out, _ = repro.fusedmm_a(
            S, A, B, p=p, c=c, algorithm=name, elision=elision, comm=comm
        )
        ticks.append(time.perf_counter() - t0)
        outs.append(out)
    return ticks, outs


def _time_session(S, A, B, name, elision, p, c, comm, persistent=True,
                  overlap="auto", backend="threads"):
    t0 = time.perf_counter()
    sess = repro.plan(
        S, A.shape[1], p=p, c=c, algorithm=name, elision=elision, comm=comm,
        persistent=persistent, overlap=overlap, backend=backend,
    )
    plan_seconds = time.perf_counter() - t0
    outs, ticks = [], []
    for _ in range(CALLS):
        t1 = time.perf_counter()
        out, _ = sess.fusedmm_a(A, B)
        ticks.append(time.perf_counter() - t1)
        outs.append(out)
    report = sess.report()
    efficiency = report.overlap_efficiency
    sess.close()
    return plan_seconds, ticks, outs, efficiency


def _time_traced(S, A, B, name, elision, p, c, comm):
    """One traced resident-pool run per case: the per-call cost with span
    tracing on, and the derived overlap-window occupancy (fraction of
    local-kernel time with a transfer actually in flight)."""
    sess = repro.plan(
        S, A.shape[1], p=p, c=c, algorithm=name, elision=elision, comm=comm,
        persistent=True, overlap="on", trace="on",
    )
    ticks = []
    for _ in range(CALLS):
        t1 = time.perf_counter()
        sess.fusedmm_a(A, B)
        ticks.append(time.perf_counter() - t1)
    occupancy = sess.timeline().overlap_window_occupancy
    sess.close()
    return ticks, occupancy


def measure(scale: str):
    n = 2048 if scale == "small" else 8192
    r = 64
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, r))
    B = rng.standard_normal((n, r))
    S = repro.erdos_renyi(n, n, 8, seed=7)

    records = []
    for name, elision, p, c, comm in CASES:
        # warm both paths (thread pools, comm-plan cache) before timing
        repro.fusedmm_a(S, A, B, p=p, c=c, algorithm=name, elision=elision, comm=comm)
        # two interleaved measurement rounds per mode: the min over both
        # decorrelates the steady-state estimate from transient scheduler
        # noise on shared runners (a single slow round cannot flip the
        # pool-vs-spawn comparison)
        ticks_os, ticks_spawn, ticks_sess = [], [], []
        ticks_sync, ticks_overlap = [], []
        overlap_eff = 0.0
        plan_s = None
        for rnd in range(2):
            t_os, outs_os = _time_one_shot(S, A, B, name, elision, p, c, comm)
            _, t_spawn, outs_spawn, _ = _time_session(
                S, A, B, name, elision, p, c, comm, persistent=False
            )
            plan_round, t_sess, outs_sess, _ = _time_session(
                S, A, B, name, elision, p, c, comm, persistent=True
            )
            # sync vs overlapped phase loops on identical resident-pool
            # sessions: same plans, same warm ranks — only the software
            # pipeline differs.  The two modes alternate measurement order
            # across rounds so slow machine drift on shared runners cannot
            # systematically penalize whichever runs later.
            modes = ("off", "on") if rnd % 2 == 0 else ("on", "off")
            timed = {}
            for ov in modes:
                _, ticks_ov, outs_ov, eff_ov = _time_session(
                    S, A, B, name, elision, p, c, comm, persistent=True,
                    overlap=ov,
                )
                timed[ov] = (ticks_ov, outs_ov, eff_ov)
            t_sync, outs_sync, _ = timed["off"]
            t_over, outs_over, eff = timed["on"]
            ticks_os += t_os
            ticks_spawn += t_spawn
            ticks_sess += t_sess
            ticks_sync += t_sync
            ticks_overlap += t_over
            overlap_eff = max(overlap_eff, eff)
            plan_s = plan_round if plan_s is None else min(plan_s, plan_round)
            for o_os, o_sp, o_s, o_sy, o_ov in zip(
                outs_os, outs_spawn, outs_sess, outs_sync, outs_over
            ):
                assert np.array_equal(o_os, o_s), f"{name}: pooled session diverged"
                assert np.array_equal(o_sp, o_s), f"{name}: spawn session diverged"
                assert np.array_equal(o_sy, o_ov), f"{name}: overlap diverged"
        # best-of-CALLS is the steady-state driver cost per call; it is
        # robust to scheduler noise on shared runners (the mean is not)
        # and excludes the first session call, which carries the one-time
        # lazy distribution (plan_s above covers knob resolution only)
        one_shot, per_call = min(ticks_os), min(ticks_sess)
        spawn_call = min(ticks_spawn)
        sync_call, overlap_call = min(ticks_sync), min(ticks_overlap)
        # distribution of the pooled per-call cost across every timed call
        # (both rounds): min is the steady-state floor, p50 the typical
        # call, p99 the tail a latency-sensitive caller actually waits on
        sess_p50, sess_p99 = np.percentile(ticks_sess, [50.0, 99.0])
        os_p50, os_p99 = np.percentile(ticks_os, [50.0, 99.0])
        ticks_traced, window_occupancy = _time_traced(
            S, A, B, name, elision, p, c, comm
        )
        records.append(
            {
                "algorithm": name,
                "elision": elision,
                "p": p,
                "c": c,
                "comm": comm,
                "calls": CALLS,
                "one_shot_ms_per_call": round(one_shot * 1e3, 3),
                "one_shot_ms_per_call_mean": round(
                    sum(ticks_os) / len(ticks_os) * 1e3, 3
                ),
                "one_shot_ms_per_call_p50": round(os_p50 * 1e3, 3),
                "one_shot_ms_per_call_p99": round(os_p99 * 1e3, 3),
                "session_plan_ms": round(plan_s * 1e3, 3),
                # resident worker pool (the default session mode)
                "session_ms_per_call": round(per_call * 1e3, 3),
                "session_ms_per_call_mean": round(
                    sum(ticks_sess) / len(ticks_sess) * 1e3, 3
                ),
                "session_ms_per_call_p50": round(sess_p50 * 1e3, 3),
                "session_ms_per_call_p99": round(sess_p99 * 1e3, 3),
                # spawn-per-call session: threads + contexts per call
                "spawn_ms_per_call": round(spawn_call * 1e3, 3),
                "spawn_ms_per_call_mean": round(
                    sum(ticks_spawn) / len(ticks_spawn) * 1e3, 3
                ),
                "speedup": round(one_shot / per_call, 2) if per_call > 0 else 0.0,
                "pool_speedup_vs_spawn": (
                    round(spawn_call / per_call, 2) if per_call > 0 else 0.0
                ),
                # synchronous vs software-pipelined phase loops (overlap)
                "sync_ms_per_call": round(sync_call * 1e3, 3),
                "overlap_ms_per_call": round(overlap_call * 1e3, 3),
                "overlap_speedup": (
                    round(sync_call / overlap_call, 3) if overlap_call > 0 else 0.0
                ),
                "overlap_efficiency": round(overlap_eff, 4),
                # observability: traced (spans-on) per-call cost and the
                # timeline-derived overlap-window occupancy of that run
                "traced_ms_per_call": round(min(ticks_traced) * 1e3, 3),
                "overlap_window_occupancy": round(window_occupancy, 4),
            }
        )
    return n, r, records


def measure_backend(scale: str, backend: str) -> None:
    """Reduced measurement for a process backend: sync-vs-overlap per-call
    time on resident sessions only.

    The full thread-backend benchmark compares launch modes
    (one-shot / spawn-per-call / resident pool) that are thread-only
    concepts, and its JSON feeds a regression gate whose baselines were
    measured on threads — so under ``--backend mpi`` this path times the
    part that is meaningful on real processes (the overlap pipeline,
    whose speedup the thread runtime structurally cannot show) and prints
    it without touching ``BENCH_sparse_comm.json``.  Launch with
    ``mpirun -n 8`` (the benchmark grid plans p=8).
    """
    n = 2048 if scale == "small" else 8192
    r = 64
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, r))
    B = rng.standard_normal((n, r))
    S = repro.erdos_renyi(n, n, 8, seed=7)
    rows = []
    for name, elision, p, c, comm in CASES:
        _, t_sync, outs_sync, _ = _time_session(
            S, A, B, name, elision, p, c, comm, overlap="off", backend=backend
        )
        _, t_over, outs_over, eff = _time_session(
            S, A, B, name, elision, p, c, comm, overlap="on", backend=backend
        )
        for o_sy, o_ov in zip(outs_sync, outs_over):
            assert np.array_equal(o_sy, o_ov), f"{name}: overlap diverged"
        sync_call, overlap_call = min(t_sync), min(t_over)
        rows.append(
            [
                f"{name}/{elision}/{comm}",
                round(sync_call * 1e3, 3),
                round(overlap_call * 1e3, 3),
                f"{sync_call / overlap_call:.2f}x" if overlap_call else "-",
                f"{eff:.0%}",
            ]
        )
    print(
        f"backend={backend} sync vs overlapped FusedMM, best-of-{CALLS} "
        f"driver ms/call (n={n}, r={r})"
    )
    print(
        format_table(
            ["variant", "sync ms", "overlap ms", "speedup", "eff"], rows
        )
    )


def _overlap_bound(p: int) -> float:
    """Gate multiplier for overlap-vs-sync: the thread runtime only runs
    compute beside a transfer with one hardware thread per rank, so the
    strict 1.0x bound applies exactly there.  Any oversubscribed host
    (shared CI runners included) time-slices rank compute — the pipeline
    can only shave scheduling artifacts it did not cause — so the gate
    degrades to a loose 1.25x sanity bound rather than hard-failing on
    host topology."""
    cores = os.cpu_count() or 1
    return 1.0 if cores >= p else 1.25


def check_headline(records) -> None:
    """Steady-state pooled-session calls must not be slower than one-shot
    calls, nor than the spawn-per-call session mode (the pool does
    strictly less driver work per call: no thread spawn, no communicator
    splits, no context rebuild; 15% slack absorbs residual wall-clock
    noise on shared CI runners)."""
    for rec in records:
        assert rec["session_ms_per_call"] <= 1.15 * rec["one_shot_ms_per_call"], (
            f"{rec['algorithm']}: session per-call {rec['session_ms_per_call']} ms "
            f"exceeds one-shot {rec['one_shot_ms_per_call']} ms"
        )
        assert rec["session_ms_per_call"] <= 1.15 * rec["spawn_ms_per_call"], (
            f"{rec['algorithm']}: resident-pool per-call "
            f"{rec['session_ms_per_call']} ms exceeds spawn-per-call "
            f"{rec['spawn_ms_per_call']} ms"
        )
        # the software pipeline only removes exposed wait time (identical
        # kernels, one extra pre-posted message per split shift), so the
        # best-of-rounds overlapped call must not be slower than sync —
        # when compute actually runs beside the transfers (_overlap_bound)
        bound = _overlap_bound(rec["p"])
        assert rec["overlap_ms_per_call"] <= bound * rec["sync_ms_per_call"], (
            f"{rec['algorithm']}: overlapped per-call "
            f"{rec['overlap_ms_per_call']} ms exceeds synchronous "
            f"{rec['sync_ms_per_call']} ms (bound {bound:.2f}x)"
        )
        # every benchmarked (shifting) family must actually hide transfer
        # time behind its local kernels
        assert rec["overlap_efficiency"] > 0.0, (
            f"{rec['algorithm']}: overlap pipeline hid no communication"
        )
        # the timeline-derived occupancy is a fraction by construction; a
        # value outside [0, 1] means the span/async-window bookkeeping
        # broke (it is host-dependent, so no lower bound is gated here)
        assert 0.0 <= rec["overlap_window_occupancy"] <= 1.0, (
            f"{rec['algorithm']}: overlap_window_occupancy "
            f"{rec['overlap_window_occupancy']} outside [0, 1]"
        )


def emit(n, r, records) -> None:
    doc = {}
    if JSON_PATH.exists():
        doc = json.loads(JSON_PATH.read_text())
    doc["session"] = {
        "benchmark": "session_amortization",
        "n": n,
        "r": r,
        "calls": CALLS,
        "records": records,
    }
    JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    rows = [
        [
            f"{rec['algorithm']}/{rec['elision']}/{rec['comm']}",
            rec["one_shot_ms_per_call"],
            rec["session_plan_ms"],
            rec["spawn_ms_per_call"],
            rec["session_ms_per_call"],
            rec["session_ms_per_call_p50"],
            rec["session_ms_per_call_p99"],
            f"{rec['speedup']:.2f}x",
            f"{rec['pool_speedup_vs_spawn']:.2f}x",
            rec["sync_ms_per_call"],
            rec["overlap_ms_per_call"],
            f"{rec['overlap_speedup']:.2f}x",
            f"{rec['overlap_efficiency']:.0%}",
            f"{rec['overlap_window_occupancy']:.0%}",
        ]
        for rec in records
    ]
    write_result(
        "session.txt",
        f"One-shot vs session-handle FusedMM — amortized driver ms/call "
        f"at calls={CALLS} (n={n}, r={r}); 'spawn' = session without the "
        f"resident worker pool, 'pool' = the default resident-pool mode "
        f"('pool ms' = best-of-calls floor, p50/p99 = per-call "
        f"distribution over all timed calls); "
        f"'sync'/'overlap' = resident-pool sessions with the phase-loop "
        f"software pipeline off/on ('eff' = measured fraction of the "
        f"perfectly-hideable communication actually hidden; 'window occ' "
        f"= traced-run fraction of local-kernel time with a transfer in "
        f"flight)\n"
        + format_table(
            [
                "variant",
                "one-shot ms",
                "plan ms (once)",
                "spawn ms",
                "pool ms",
                "pool p50",
                "pool p99",
                "vs one-shot",
                "vs spawn",
                "sync ms",
                "overlap ms",
                "overlap spdup",
                "eff",
                "window occ",
            ],
            rows,
        ),
    )


def test_bench_session(benchmark, scale):
    n, r, records = benchmark.pedantic(lambda: measure(scale), rounds=1, iterations=1)
    check_headline(records)
    emit(n, r, records)


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--backend", default="threads", choices=["threads", "mpi"],
        help="execution backend; 'mpi' runs the reduced sync-vs-overlap "
        "measurement on resident sessions (launch under `mpirun -n 8`) "
        "and does not touch the committed benchmark JSON",
    )
    ap.add_argument("--scale", default="small", choices=["small", "large"])
    cli_args = ap.parse_args()
    if cli_args.backend != "threads":
        measure_backend(cli_args.scale, cli_args.backend)
    else:
        n, r, records = measure(cli_args.scale)
        check_headline(records)
        emit(n, r, records)
        print(f"updated {JSON_PATH}")

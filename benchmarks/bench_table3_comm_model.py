"""Table III: measured communication equals the analytic model.

This regenerates the paper's cost table twice — once from the closed-form
formulas and once from *measured* per-rank traffic of real executions —
and checks they coincide word for word (dense terms exact; sparse-chunk
terms exact in expectation).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.fused import run_fusedmm
from repro.algorithms.registry import make_algorithm
from repro.harness.reporting import format_table
from repro.model.costs import fusedmm_cost
from repro.sparse.generate import erdos_renyi
from repro.types import Elision, FusedVariant, Phase

from conftest import write_result

CASES = [
    ("1.5d-dense-shift", Elision.NONE, 16, 4),
    ("1.5d-dense-shift", Elision.REPLICATION_REUSE, 16, 4),
    ("1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION, 16, 4),
    ("1.5d-sparse-shift", Elision.NONE, 16, 4),
    ("1.5d-sparse-shift", Elision.REPLICATION_REUSE, 16, 4),
    ("2.5d-dense-replicate", Elision.NONE, 16, 4),
    ("2.5d-dense-replicate", Elision.REPLICATION_REUSE, 16, 4),
    ("2.5d-sparse-replicate", Elision.NONE, 16, 4),
]


def test_table3_comm_model(benchmark, scale):
    n = 16 * 64 if scale == "small" else 16 * 256
    r = 64
    S = erdos_renyi(n, n, 8, seed=3)
    phi = S.nnz / (n * r)
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, r))
    B = rng.standard_normal((n, r))

    def run():
        rows = []
        for name, el, p, c in CASES:
            alg = make_algorithm(name, p, c)
            rep = run_fusedmm(
                alg, S, A, B, variant=FusedVariant.FUSED_B, elision=el
            ).report
            meas_w = np.mean(
                [
                    pr.counters[Phase.REPLICATION].words_received
                    + pr.counters[Phase.PROPAGATION].words_received
                    for pr in rep.per_rank
                ]
            )
            meas_m = np.mean(
                [
                    pr.counters[Phase.REPLICATION].messages_received
                    + pr.counters[Phase.PROPAGATION].messages_received
                    for pr in rep.per_rank
                ]
            )
            model = fusedmm_cost(f"{name}/{el.value}", n, r, p, c, phi)
            rows.append(
                [f"{name}/{el.value}", p, c,
                 int(meas_w), int(model.words), meas_m, model.messages]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    write_result(
        "table3_comm_model.txt",
        f"Table III — measured vs analytic FusedMM communication "
        f"(n={n}, r=64, phi={phi:.4f})\n"
        + format_table(
            ["variant", "p", "c", "measured words", "model words",
             "measured msgs", "model msgs"],
            rows,
        ),
    )

    for row in rows:
        _, _, _, mw, ow, mm, om = row
        assert abs(mw - ow) <= max(2, 0.002 * ow), row
        assert mm == om, row

"""Figure 9: ALS and GAT application breakdowns on the amazon stand-in.

Paper shape to reproduce (256 nodes, r=128, amazon.mtx): both
applications are dominated by FusedMM work, with a visible
"communication outside FusedMM" component.  With the sessions'
persistent worker pool, the apps run those outside-the-kernel steps
**rank-side** again: the ALS batched-CG per-row dot products (an
all-reduce across the layer on the sparse-shifting family) and the GAT
edge-softmax max/sum reductions both execute on the warm ranks and are
measured as OTHER-phase communication in the reports — the paper's
contrast this figure plots.  The GAT replication-reuse variant remains
a bespoke rank procedure (its cross-round gather sharing cannot be
split into independent kernel calls) and pays the same edge-softmax
reductions outside FusedMM.
"""

from __future__ import annotations

from repro.apps.als import DistributedALS
from repro.apps.gat import DistributedGAT
from repro.harness.reporting import format_table
from repro.runtime.cost import CORI_KNL
from repro.sparse.generate import realworld_standin
from repro.types import Elision, Phase

from conftest import write_result


def _phase_row(label, report):
    repl = report.modeled_comm_seconds(CORI_KNL, Phase.REPLICATION)
    prop = report.modeled_comm_seconds(CORI_KNL, Phase.PROPAGATION)
    comp = report.phase_flops(Phase.COMPUTATION) * CORI_KNL.gamma
    out_comm = report.modeled_comm_seconds(CORI_KNL, Phase.OTHER)
    out_comp = report.phase_flops(Phase.OTHER) * CORI_KNL.gamma
    return [label, repl, prop, comp, out_comm, out_comp], (repl, prop, comp, out_comm, out_comp)


def test_fig9_applications(benchmark, scale):
    mat_scale = 10 if scale == "small" else 12
    p, c = 16, 4
    r = 32
    amazon = realworld_standin("amazon-large", scale=mat_scale, seed=2)

    def run():
        out = {}
        als_variants = [
            ("ALS 1.5d-dense-shift LKF", "1.5d-dense-shift", Elision.LOCAL_KERNEL_FUSION),
            ("ALS 1.5d-dense-shift reuse", "1.5d-dense-shift", Elision.REPLICATION_REUSE),
            ("ALS 1.5d-sparse-shift reuse", "1.5d-sparse-shift", Elision.REPLICATION_REUSE),
        ]
        for label, algname, el in als_variants:
            als = DistributedALS(p=p, c=c, algorithm=algname, elision=el, cg_iters=10)
            res = als.run(amazon.with_values(amazon.vals), r, outer_iters=1,
                          seed=0, track_loss=False)
            out[label] = res.report
        import numpy as np

        X = np.random.default_rng(0).standard_normal((amazon.nrows, r))
        for label, el in (
            ("GAT none", Elision.NONE),
            ("GAT replication-reuse", Elision.REPLICATION_REUSE),
        ):
            gat = DistributedGAT(p=p, c=c, n_heads=4, r_in=r, r_head=r // 4, elision=el)
            out[label] = gat.forward(amazon, X).report
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows, parsed = [], {}
    for label, rep in reports.items():
        row, split = _phase_row(label, rep)
        rows.append(row)
        parsed[label] = split
    write_result(
        "fig9_applications.txt",
        "Figure 9 — ALS (20 CG iterations) and GAT forward pass on the "
        f"amazon-large stand-in (p={p}, c={c}, modeled seconds, cori-knl)\n"
        + format_table(
            ["application/variant", "fused repl", "fused prop",
             "fused comp", "outside comm", "outside comp"],
            rows,
        ),
    )

    # --- claims (session-era driver) -------------------------------------
    # every variant is dominated by in-kernel FusedMM communication
    for label, (repl, prop, comp, out_comm, _) in parsed.items():
        assert repl + prop > 0.0, f"{label}: no kernel communication measured"
    # handle-based drivers run CG scalars / the NONE-variant softmax
    # driver-side: no OTHER-phase rank communication
    assert parsed["ALS 1.5d-dense-shift LKF"][3] == 0.0
    assert parsed["ALS 1.5d-dense-shift reuse"][3] == 0.0
    assert parsed["ALS 1.5d-sparse-shift reuse"][3] == 0.0
    assert parsed["GAT none"][3] == 0.0
    # the bespoke replication-reuse GAT still pays edge-softmax
    # reductions outside FusedMM (paper Section VI-E)
    assert parsed["GAT replication-reuse"][3] > 0.0
    # reuse lowers GAT replication traffic vs the unoptimized sequence
    assert parsed["GAT replication-reuse"][0] < parsed["GAT none"][0]

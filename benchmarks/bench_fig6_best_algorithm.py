"""Figure 6: predicted vs observed fastest algorithm over (r, nnz/row).

Paper shape to reproduce (p=32, m=2^22, 740 trials): the plane splits
along the line ``3 nnz(S)/(n r) = 1`` — the 1.5D sparse-shifting algorithm
with replication reuse wins below it (low phi), the 1.5D dense-shifting
algorithm with local kernel fusion above it (high phi), and a 1.5D
algorithm is always the overall winner; the predicted and observed maps
agree except near the boundary.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.harness.sweeps import best_algorithm_map
from repro.runtime.cost import MachineParams

from conftest import write_result

#: bandwidth-dominated machine, as in the paper's words-based analysis
BETA_MACHINE = MachineParams(alpha=2e-7, beta=1e-9, gamma=5e-11, name="beta-heavy")


def test_fig6_best_algorithm_map(benchmark, scale):
    p = 16
    m = 1 << 12 if scale == "small" else 1 << 14
    r_values = [16, 64, 192]
    nnz_values = [2, 8, 24, 64]

    def run():
        return best_algorithm_map(
            p, m, r_values, nnz_values, machine=BETA_MACHINE, max_c=8
        )

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [c.r, c.nnz_per_row, f"{c.phi:.3f}", c.predicted, c.observed,
         "ok" if c.predicted == c.observed else "MISMATCH"]
        for c in cells
    ]
    agreement = sum(c.predicted == c.observed for c in cells) / len(cells)
    write_result(
        "fig6_best_algorithm.txt",
        f"Figure 6 — best algorithm over (r, nnz/row), p={p}, m={m} "
        f"(agreement {agreement:.0%})\n"
        + format_table(["r", "nnz/row", "phi", "predicted", "observed", ""], rows),
    )

    # --- paper claims ---------------------------------------------------
    # the winner is always a 1.5D algorithm
    for c in cells:
        assert c.observed.startswith("1.5d"), c.observed
        assert c.predicted.startswith("1.5d"), c.predicted
    # low phi -> sparse shift; high phi -> dense shift (both maps)
    for c in cells:
        if c.phi < 0.15:
            assert "sparse-shift" in c.predicted
            assert "sparse-shift" in c.observed
        if c.phi > 1.0:
            assert "dense-shift" in c.predicted
            assert "dense-shift" in c.observed
    # maps agree away from the boundary; allow boundary-cell flips
    assert agreement >= 0.7

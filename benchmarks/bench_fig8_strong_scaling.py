"""Figure 8: strong scaling on the five Table V matrices vs PETSc.

Paper shape to reproduce (256 nodes, r=128):

* every communication-avoiding algorithm beats the PETSc-like 1D baseline
  by a widening margin as p grows (>=10x at the paper's scale);
* the sparse-shifting 1.5D algorithm wins on the *sparse* matrices
  (amazon-large, uk-2002 at ~16 nnz/row) while the dense-shifting /
  dense-replicating algorithms win on the *dense* eukarya (~111 nnz/row);
* communication elision gives up to 1.6x over the unoptimized sequence.

Matrices are R-MAT stand-ins with the Table V nonzeros-per-row profiles
(see DESIGN.md substitutions).
"""

from __future__ import annotations

from collections import defaultdict

from repro.harness.reporting import format_table
from repro.harness.strong_scaling import strong_scaling_experiment
from repro.sparse.generate import realworld_standin

from conftest import write_result

MATRICES = ("amazon-large", "uk-2002", "eukarya", "arabic-2005", "twitter7")


def test_fig8_strong_scaling(benchmark, scale):
    mat_scale = 11 if scale == "small" else 13
    p_list = [4, 16] if scale == "small" else [4, 16, 64]
    r = 128  # the paper's embedding width; sets phi ~ 0.13 for amazon-like
    # and ~0.87 for eukarya-like, which is what separates the regimes

    matrices = {name: realworld_standin(name, scale=mat_scale, seed=1) for name in MATRICES}

    def run():
        return strong_scaling_experiment(
            matrices, p_list, r=r, calls=1, max_c=16, include_petsc=True
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    best_at = {}
    for res in results:
        best = res.best_variant()
        best_at[(res.matrix, res.p)] = res
        rows.append(
            [res.matrix, res.p, best.label, best.best_c,
             best.modeled_seconds, res.petsc_seconds,
             res.petsc_seconds / best.modeled_seconds]
        )
    write_result(
        "fig8_strong_scaling.txt",
        "Figure 8 — strong scaling on Table V stand-ins "
        "(modeled seconds per FusedMM, cori-knl; PETSc = 2 SpMM calls)\n"
        + format_table(
            ["matrix", "p", "best variant", "c*", "best time", "petsc", "speedup"],
            rows,
        ),
    )

    p_hi = p_list[-1]
    for name in MATRICES:
        res = best_at[(name, p_hi)]
        best = res.best_variant()
        # the communication-avoiding algorithms beat the 1D baseline, and
        # the margin grows with p (paper: >=10x at 256 nodes)
        assert res.petsc_seconds > best.modeled_seconds
        lo = best_at[(name, p_list[0])]
        assert (
            res.petsc_seconds / best.modeled_seconds
            > 0.8 * lo.petsc_seconds / lo.best_variant().modeled_seconds
        )
        # elision helps: best eliding dense-shift variant vs its unoptimized self
        per = {v.label: v for v in res.variants}
        none_t = per["1.5d-dense-shift/none"].modeled_seconds
        elided = min(
            per["1.5d-dense-shift/replication-reuse"].modeled_seconds,
            per["1.5d-dense-shift/local-kernel-fusion"].modeled_seconds,
        )
        assert elided <= none_t

    # sparse matrices favour sparse movement; the dense eukarya favours
    # dense movement (phi at r=128: ~0.13 for amazon-like, ~0.87 for
    # eukarya-like — the two sides of the paper's 1/3 boundary)
    assert "sparse" in best_at[("amazon-large", p_hi)].best_variant().algorithm
    euk = best_at[("eukarya", p_hi)].best_variant()
    assert "dense" in euk.algorithm
